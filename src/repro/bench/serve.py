"""Sustained-qps / tail-latency benchmark for `repro serve`: writes
``BENCH_serve.json``.

What is measured
----------------
The deployment question the daemon answers is *amortization*: the
paper's top-K machinery only pays off when queries hit a long-lived
service instead of a cold process per workload.  So the baseline is
exactly that cold path -- ``repro serve-batch`` as a fresh
single-process CLI invocation (interpreter start + database load +
inline evaluation, repeated per round), which is how the repo served
workloads before this PR.  Against it, the daemon grid: >= 2 shard
counts x >= 2 worker counts, each driven over HTTP by closed-loop
client threads at rising offered load (1, 2, 4 concurrent clients)
with a mixed cold/warm workload (first round is all misses, later
rounds hit the daemon's result cache the way steady-state serving
does).  Client-observed latency gives p50/p95/p99 per cell; sustained
qps is the best plateau of the load ladder.

An overload section drives offered load past capacity against a
deliberately tiny daemon (``max_concurrency=2``, short queue, firm
deadline) and records the shed: typed 429/504 counts, and the p99 of
*accepted* queries, which must stay within the configured deadline.

Schema (``repro.bench.serve/v1``)::

    {
      "schema": "repro.bench.serve/v1",
      "config": {"scale", "n_papers", "shard_counts", "worker_counts",
                 "client_ladder", "rounds", "k", "seed"},
      "workload": {"queries": [...], "semantics": "elca",
                   "distinct": int, "requests_per_round": int},
      "baseline": {"mode": "cold-process serve-batch", "qps": float,
                   "rounds": int, "wall_ms_per_round": [...],
                   "inproc_p50_ms", "inproc_p95_ms", "inproc_p99_ms"},
      "grid": [{"shards", "workers", "clients_best", "qps",
                "p50_ms", "p95_ms", "p99_ms", "requests",
                "ladder": {"<clients>": qps}}],
      "speedups": {"daemon_s<N>_vs_baseline": float},
      "overload": {"offered", "accepted", "rejected_queue_full",
                   "rejected_deadline", "deadline_ms",
                   "p99_accepted_ms", "queue_depth_after"},
      "tracing_overhead": {"plain", "traced", "measured_p50_overhead",
                           "obs_tail_p50_ms", "obs_tail_share_of_p50",
                           "budget", "guard_ok"},
      "supervision_overhead": {"supervised", "unsupervised",
                               "measured_p50_overhead",
                               "sup_tail_p50_ms",
                               "sup_tail_share_of_p50",
                               "budget", "guard_ok"},
      "chaos": {"<mix>": {"availability", "degraded_responses",
                          "pool_rebuilds", "breaker_trips", "healed",
                          "ok", "violations", ...}},
      "ops": {"serve_daemon_topk": {...}, "serve_baseline_topk": {...},
              "serve_daemon_topk_traced": {...}, "serve_obs_tail": {...},
              "serve_daemon_topk_chaosoff": {...}}
    }

``ops`` carries the guarded p50s the perf-regression series tracks
(`repro regress`); the ``scale`` label keeps this series separate from
the hot-path one.  ``--smoke`` shrinks everything for CI and asserts
the admission/fan-out metrics the smoke job scrapes.

The ``tracing_overhead`` section is the observability cost guard
(same style as the PR 2 <=5% guards): the on/off daemon drive gives a
*measured* qps/p50 comparison (informational -- two short drives are
noisy), while the enforced guard is cost arithmetic: a microbenchmark
of the per-request observability tail (stitch_trace + tail-sampling
decision + trace-store add + access-log append + SLO record, JSONL
mirroring included) must come in at <= 5% of the traced daemon's
request p50.  Two ops feed `repro regress`: ``serve_daemon_topk_traced``
(daemon p50 with tracing + access log on) and ``serve_obs_tail`` (the
microbenchmarked tail itself, microsecond-stable, so a regression in
the observability code is caught directly).
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api import XMLDatabase
from ..datagen import DBLPGenerator, PlantedTerm, PlantingPlan
from ..obs.account import (ResourceAccount, accounting, active_account,
                           fold_into_stats, merge_resources)
from ..obs.distributed import (AccessLog, TailSampler, TraceStore,
                               make_span, stitch_trace)
from ..obs.metrics import MetricsRegistry
from ..obs.slo import SLOTracker
from ..serve import ServeDaemon, ShardedDatabase

SCHEMA = "repro.bench.serve/v1"
DEFAULT_OUT = "BENCH_serve.json"
SEED = 13


def _percentiles(samples: Sequence[float]) -> Dict[str, float]:
    arr = np.asarray(list(samples), dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
    }


def build_corpus(n_papers: int, seed: int = SEED) -> XMLDatabase:
    """DBLP-like corpus with one broad anchor term, one mid-frequency
    term and a pool of rare terms: the pairs below give the workload
    both cheap (rare-driven) and postings-heavy (anchor-driven)
    queries."""
    plan = PlantingPlan(planted=[
        PlantedTerm("anchor", max(50, n_papers // 2), tf_range=(1, 3)),
        PlantedTerm("mid", max(20, n_papers // 8), tf_range=(1, 2)),
    ] + [PlantedTerm(f"srv{i:02d}", 2) for i in range(8)])
    tree = DBLPGenerator(seed=seed, n_papers=n_papers,
                         plan=plan).generate()
    db = XMLDatabase.from_tree(tree)
    db.columnar_index
    db.inverted_index
    return db


def build_workload(distinct: int = 12) -> List[str]:
    """Distinct queries, mixed selectivity; reused across rounds so
    round one is cold and the rest exercise the warm path."""
    pool = ([f"srv{i:02d} anchor" for i in range(8)]
            + ["mid anchor", "anchor", "mid", "srv00 mid"])
    return pool[:distinct]


# ---------------------------------------------------------------------------
# daemon harness (same pattern as tests/test_serve_daemon.py)
# ---------------------------------------------------------------------------

class _DaemonRunner:
    def __init__(self, db, **kwargs):
        kwargs.setdefault("port", 0)
        self.metrics = kwargs.setdefault("metrics", MetricsRegistry())
        self.daemon = ServeDaemon(db, **kwargs)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.daemon.start())
        self._ready.set()
        self.loop.run_forever()

    def __enter__(self):
        self.thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("daemon failed to start")
        return self

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(self.daemon.stop(),
                                         self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(30)
        self.loop.close()


def _drive(port: int, queries: List[str], rounds: int, clients: int,
           k: int, extra: str = "") -> Tuple[List[float], List[int], float]:
    """Closed-loop client threads; each issues its slice of the
    workload `rounds` times over one keep-alive connection.  Returns
    (latencies_ms, statuses, wall_s)."""
    requests: List[str] = []
    for r in range(rounds):
        for i, q in enumerate(queries):
            requests.append(
                f"/topk?q={q.replace(' ', '+')}&k={k}{extra}")
    latencies: List[float] = []
    statuses: List[int] = []
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        local_lat, local_status = [], []
        try:
            for idx in range(worker_id, len(requests), clients):
                start = time.perf_counter()
                conn.request("GET", requests[idx])
                resp = conn.getresponse()
                resp.read()
                local_lat.append(
                    (time.perf_counter() - start) * 1000.0)
                local_status.append(resp.status)
        finally:
            conn.close()
        with lock:
            latencies.extend(local_lat)
            statuses.extend(local_status)

    threads = [threading.Thread(target=worker, args=(w,))
               for w in range(clients)]
    wall = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall
    return latencies, statuses, wall


# ---------------------------------------------------------------------------
# baseline: cold-process serve-batch
# ---------------------------------------------------------------------------

def run_baseline(db_dir: str, workload_path: str, queries: List[str],
                 rounds: int, k: int) -> Dict[str, object]:
    """The pre-daemon serving path: one fresh `repro serve-batch`
    process per round (interpreter start + database load + inline
    evaluation), plus an in-process pass for per-query percentiles
    (which flatters the baseline -- it pays no startup)."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    walls: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve-batch", db_dir,
             workload_path, "-k", str(k), "--quiet"],
            env=env, capture_output=True, text=True, timeout=600)
        walls.append((time.perf_counter() - start) * 1000.0)
        if proc.returncode != 0:
            raise RuntimeError(
                f"baseline serve-batch failed: {proc.stderr[-500:]}")
    from ..diskdb import load_database

    inproc = load_database(db_dir)
    batch = inproc.search_batch(queries, k=k)
    pct = _percentiles(batch.latencies_ms)
    total_queries = rounds * len(queries)
    qps = total_queries / (sum(walls) / 1000.0)
    return {
        "mode": "cold-process serve-batch",
        "qps": qps,
        "rounds": rounds,
        "wall_ms_per_round": walls,
        "inproc_p50_ms": pct["p50_ms"],
        "inproc_p95_ms": pct["p95_ms"],
        "inproc_p99_ms": pct["p99_ms"],
    }


# ---------------------------------------------------------------------------
# the grid and the overload probe
# ---------------------------------------------------------------------------

def run_grid_cell(db: XMLDatabase, shards: int, workers: int,
                  queries: List[str], rounds: int, k: int,
                  ladder: Sequence[int]) -> Dict[str, object]:
    sharded = ShardedDatabase.from_database(db, shards)
    with _DaemonRunner(sharded, workers=workers,
                       max_concurrency=8, queue_limit=64) as runner:
        ladder_qps: Dict[str, float] = {}
        best = None
        for clients in ladder:
            lat, statuses, wall = _drive(runner.daemon.port, queries,
                                         rounds, clients, k)
            assert all(s == 200 for s in statuses), statuses[:5]
            qps = len(lat) / wall
            ladder_qps[str(clients)] = qps
            if best is None or qps > best[0]:
                best = (qps, clients, lat)
        depth = runner.metrics.gauge("repro_serve_queue_depth").value
    qps, clients_best, lat = best
    cell = {"shards": shards, "workers": workers,
            "clients_best": clients_best, "qps": qps,
            "requests": len(lat), "ladder": ladder_qps,
            "queue_depth_after": depth}
    cell.update(_percentiles(lat))
    return cell


def run_overload(db: XMLDatabase, queries: List[str], k: int,
                 deadline_ms: float = 400.0) -> Dict[str, object]:
    """Offered load far beyond capacity on a deliberately small daemon:
    uncached (cache size 0), two slots, a three-deep queue.  The
    daemon must shed with typed rejections and keep accepted-query p99
    within the configured deadline."""
    sharded = ShardedDatabase.from_database(db, 4)
    with _DaemonRunner(sharded, workers=0, max_concurrency=2,
                       queue_limit=3, result_cache_size=0,
                       default_timeout_ms=deadline_ms) as runner:
        lat, statuses, _wall = _drive(
            runner.daemon.port, queries, rounds=4, clients=12, k=k)
        reg = runner.metrics
        shed_429 = reg.counter("repro_serve_rejects_total",
                               {"reason": "queue_full"}).value
        shed_504 = reg.counter("repro_serve_rejects_total",
                               {"reason": "deadline"}).value
        depth = reg.gauge("repro_serve_queue_depth").value
    accepted = [l for l, s in zip(lat, statuses) if s == 200]
    rejected = [s for s in statuses if s in (429, 504)]
    assert len(accepted) + len(rejected) == len(statuses), \
        "untyped response under overload"
    out = {
        "offered": len(statuses),
        "accepted": len(accepted),
        "rejected_queue_full": int(shed_429),
        "rejected_deadline": int(shed_504),
        "deadline_ms": deadline_ms,
        "queue_depth_after": depth,
    }
    if accepted:
        out["p99_accepted_ms"] = _percentiles(accepted)["p99_ms"]
    return out


# ---------------------------------------------------------------------------
# observability overhead: the <=5% guard
# ---------------------------------------------------------------------------

OBS_BUDGET = 0.05  # observability tail must stay under 5% of request p50


def measure_obs_tail(repeats: int = 300) -> Dict[str, float]:
    """Per-request cost of the daemon's observability tail, isolated.

    One iteration is everything `_handle_query.finish` adds per request
    beyond evaluation: stitch the trace (two shards, each with a
    representative worker span tree), make the tail-sampling decision,
    add to the trace store, append the access-log record and feed the
    SLO tracker -- JSONL mirroring to disk included, because the CI
    daemon runs with both log files on.
    """
    import tempfile

    worker_tree = make_span("shard_query", 0.0, 12.0,
                            {"retrievals": 250, "emitted": 10}, [
                                make_span("postings_fetch", 0.1, 3.0),
                                make_span("rank_join", 3.2, 8.0,
                                          {"retrievals": 250}),
                            ])
    shards = [{"shard": sid, "elapsed_ms": 12.0, "partial": False,
               "retrievals": 250, "emitted": 10, "pid": 1234,
               "trace": worker_tree} for sid in range(2)]
    log_shards = [{key: value for key, value in info.items()
                   if key != "trace"} for info in shards]
    samples: List[float] = []
    with tempfile.TemporaryDirectory(prefix="repro-obs-tail-") as tmp:
        store = TraceStore(capacity=256,
                           path=os.path.join(tmp, "traces.jsonl"))
        log = AccessLog(capacity=1024,
                        path=os.path.join(tmp, "access.jsonl"))
        sampler = TailSampler()
        slo = SLOTracker()
        for i in range(repeats):
            start = time.perf_counter()
            trace = stitch_trace(
                trace_id=f"{i:016x}", endpoint="topk",
                terms=["anchor", "mid"], semantics="elca", k=10,
                status=200, outcome="ok", elapsed_ms=14.0,
                queue_wait_ms=0.05, shards=shards, scatter_ms=12.5,
                merge_ms=0.4, wall_time=1.0,
                extra_tags={"fanout": 2, "mode": "pool",
                            "result_count": 10})
            if sampler.keep(200, "ok", 14.0):
                store.add(trace)
            log.record(wall_time=1.0, trace_id=trace["trace_id"],
                       endpoint="topk", terms=["anchor", "mid"],
                       semantics="elca", k=10, status=200, outcome="ok",
                       cached=False, queue_wait_ms=0.05, elapsed_ms=14.0,
                       result_count=10, partial=False, bound=None,
                       shards=log_shards)
            slo.record(200, 14.0)
            samples.append((time.perf_counter() - start) * 1000.0)
    return _percentiles(samples)


def run_tracing_overhead(db: XMLDatabase, queries: List[str], k: int,
                         rounds: int) -> Dict[str, object]:
    """Daemon qps/p50 with tracing + access log on vs off, plus the
    enforced cost-arithmetic guard.

    The on/off drives share one sharded database (warm caches both
    ways), so the measured delta isolates the observability work; it
    stays informational because two short closed-loop drives jitter
    more than the effect being measured.  The guard that fails the run
    is arithmetic: `measure_obs_tail` p50 <= ``OBS_BUDGET`` of the
    traced daemon's request p50.  The daemon's result cache is off for
    both drives: the budget is judged against requests that actually
    evaluate (the ones whose traces carry shard trees), not sub-ms
    cache hits that skip the scatter and stitch a bare cache_hit span.
    """
    import tempfile

    sharded = ShardedDatabase.from_database(db, 2)
    modes: Dict[str, Dict[str, float]] = {}
    with tempfile.TemporaryDirectory(prefix="repro-serve-obs-") as tmp:
        for mode, tracing in (("plain", False), ("traced", True)):
            kwargs = dict(workers=0, max_concurrency=8, queue_limit=64,
                          result_cache_size=0, tracing=tracing)
            if tracing:
                kwargs["access_log_path"] = os.path.join(
                    tmp, "access.jsonl")
                kwargs["trace_log_path"] = os.path.join(
                    tmp, "traces.jsonl")
            with _DaemonRunner(sharded, **kwargs) as runner:
                lat, statuses, wall = _drive(
                    runner.daemon.port, queries, rounds, 2, k)
            assert all(s == 200 for s in statuses), statuses[:5]
            cell: Dict[str, float] = {"qps": len(lat) / wall,
                                      "requests": len(lat)}
            cell.update(_percentiles(lat))
            modes[mode] = cell
    tail = measure_obs_tail()
    p50_traced = modes["traced"]["p50_ms"]
    p50_plain = modes["plain"]["p50_ms"]
    share = tail["p50_ms"] / p50_traced if p50_traced else 0.0
    return {
        "plain": modes["plain"],
        "traced": modes["traced"],
        "measured_p50_overhead":
            (p50_traced / p50_plain - 1.0) if p50_plain else 0.0,
        "obs_tail_p50_ms": tail["p50_ms"],
        "obs_tail_p95_ms": tail["p95_ms"],
        "obs_tail_share_of_p50": share,
        "budget": OBS_BUDGET,
        "guard_ok": share <= OBS_BUDGET,
    }


# ---------------------------------------------------------------------------
# self-healing: supervision overhead guard + chaos section
# ---------------------------------------------------------------------------

SUPERVISION_BUDGET = 0.05  # breaker/retry layer must stay under 5% of p50


def measure_supervision_tail(repeats: int = 2000) -> Dict[str, float]:
    """Per-request cost of the supervision layer with chaos off.

    One iteration is what `_call_shard` adds around a healthy two-shard
    scatter beyond the pool round-trip itself: a breaker admission
    check and a success recording per shard (the closed-state fast
    path), plus the retry-policy classification the failure path would
    consult.  Microsecond-stable, so a regression in the breaker
    bookkeeping is caught directly rather than inside drive noise.
    """
    from ..reliability.retry import RetryPolicy
    from ..serve.supervisor import ShardSupervisor

    sup = ShardSupervisor(2, 0)
    policy = RetryPolicy(max_attempts=2)
    err = OSError("probe")
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        for sid in (0, 1):
            breaker = sup.breaker(sid)
            breaker.allow()
            breaker.record_success()
        policy.retryable(err)
        samples.append((time.perf_counter() - start) * 1000.0)
    return _percentiles(samples)


def run_supervision_overhead(db: XMLDatabase, queries: List[str], k: int,
                             rounds: int) -> Dict[str, object]:
    """Daemon qps/p50 with the self-healing layer on vs off, chaos
    disabled either way -- the production config against the legacy
    raise-on-any-failure path.

    Mirrors `run_tracing_overhead`: the on/off drives share one
    sharded database and are informational (closed-loop jitter); the
    enforced guard is cost arithmetic -- `measure_supervision_tail`
    p50 <= ``SUPERVISION_BUDGET`` of the supervised daemon's request
    p50.  Both drives run ``workers=1`` (supervision governs the pool
    path) with the result cache off so every request crosses the
    breakers.  The supervised drive's p50 is the regress-guarded
    ``serve_daemon_topk_chaosoff`` op.
    """
    sharded = ShardedDatabase.from_database(db, 2)
    modes: Dict[str, Dict[str, float]] = {}
    for mode, supervision in (("unsupervised", False),
                              ("supervised", True)):
        with _DaemonRunner(sharded, workers=1, max_concurrency=8,
                           queue_limit=64, result_cache_size=0,
                           supervision=supervision) as runner:
            lat, statuses, wall = _drive(
                runner.daemon.port, queries, rounds, 2, k)
        assert all(s == 200 for s in statuses), statuses[:5]
        cell: Dict[str, float] = {"qps": len(lat) / wall,
                                  "requests": len(lat)}
        cell.update(_percentiles(lat))
        modes[mode] = cell
    tail = measure_supervision_tail()
    p50_on = modes["supervised"]["p50_ms"]
    p50_off = modes["unsupervised"]["p50_ms"]
    share = tail["p50_ms"] / p50_on if p50_on else 0.0
    return {
        "supervised": modes["supervised"],
        "unsupervised": modes["unsupervised"],
        "measured_p50_overhead":
            (p50_on / p50_off - 1.0) if p50_off else 0.0,
        "sup_tail_p50_ms": tail["p50_ms"],
        "sup_tail_p95_ms": tail["p95_ms"],
        "sup_tail_share_of_p50": share,
        "budget": SUPERVISION_BUDGET,
        "guard_ok": share <= SUPERVISION_BUDGET,
    }


# ---------------------------------------------------------------------------
# resource accounting: the <=5% guard
# ---------------------------------------------------------------------------

ACCOUNTING_BUDGET = 0.05  # accounting tail must stay under 5% of request p50


def measure_accounting_tail(repeats: int = 2000) -> Dict[str, float]:
    """Per-query cost of the resource-accounting layer, isolated.

    Accounting is always-on (there is no off configuration to drive
    against), so the guard is pure cost arithmetic over a
    representative query's accounting work: open the context-var
    account, the column taps a two-term six-level query fires (an
    `active_account` lookup plus `record_column` each), the read-path
    copy taps and cache attributions, the fold into `ExecutionStats`,
    and the daemon-side `merge_resources` of the emitted dict -- the
    complete per-request accounting cycle from `api._topk_result`
    through `ServeDaemon._scatter`.
    """
    from ..algorithms.base import ExecutionStats

    payload = b"x" * 512
    samples: List[float] = []
    merged: Optional[Dict[str, object]] = None
    for _ in range(repeats):
        start = time.perf_counter()
        stats = ExecutionStats()
        with accounting() as account:
            for level in range(1, 7):
                for _term in range(2):
                    inner = active_account()
                    if inner is not None:
                        inner.record_column(level, "delta", len(payload),
                                            2048, 256, True)
            account.record_copy(4096)
            account.record_cache(True, 2048)
            account.record_cache(False, 2048)
        fold_into_stats(stats, account)
        merged = merge_resources(None, stats.resources)
        samples.append((time.perf_counter() - start) * 1000.0)
    assert merged and merged["bytes_decompressed"] > 0
    return _percentiles(samples)


def run_accounting_overhead(daemon_p50_ms: float) -> Dict[str, object]:
    """The enforced guard: `measure_accounting_tail` p50 <=
    ``ACCOUNTING_BUDGET`` of the daemon's request p50.  Takes the best
    grid cell's p50 rather than driving a fresh on/off pair -- there is
    no "accounting off" daemon to difference against, and the tail
    microbench is microsecond-stable where a drive delta would drown
    in closed-loop jitter."""
    tail = measure_accounting_tail()
    share = tail["p50_ms"] / daemon_p50_ms if daemon_p50_ms else 0.0
    return {
        "acct_tail_p50_ms": tail["p50_ms"],
        "acct_tail_p95_ms": tail["p95_ms"],
        "acct_tail_share_of_p50": share,
        "daemon_p50_ms": daemon_p50_ms,
        "budget": ACCOUNTING_BUDGET,
        "guard_ok": share <= ACCOUNTING_BUDGET,
    }


CHAOS_MIXES = {
    "kill-heavy": "kill=0.08,latency=0.05,latency-ms=25",
    "latency-heavy": "latency=0.25,latency-ms=35,error=0.05",
    "mixed": "kill=0.03,error=0.08,latency=0.10,latency-ms=25,byte=0.03",
}


def run_chaos_section(db: XMLDatabase, k: int, requests: int,
                      seed: int = SEED) -> Dict[str, object]:
    """Seeded chaos drives, one per fault mix, each graded against the
    self-healing SLOs by `serve.chaos.run_chaos_drive`: availability
    over accepted requests, bounded degraded responses, the deadline
    ceiling, and full healing (pools respawned, breakers re-closed)."""
    from ..serve.chaos import (ChaosInjector, run_chaos_drive,
                               sample_queries)

    sharded = ShardedDatabase.from_database(db, 2)
    queries = sample_queries(sharded, seed=seed)
    out: Dict[str, object] = {}
    for name, spec in CHAOS_MIXES.items():
        chaos = ChaosInjector.from_spec(f"{spec},seed={seed}")
        report = run_chaos_drive(
            sharded, chaos, queries, workers=1, k=k,
            requests=requests, clients=3)
        out[name] = {key: report[key] for key in (
            "chaos", "requests", "statuses", "availability",
            "availability_target", "degraded_responses",
            "accepted_p50_ms", "accepted_p99_ms", "injected",
            "pool_rebuilds", "breaker_trips", "healed", "violations",
            "ok")}
        print(f"  {name}: availability={report['availability']:.4f} "
              f"rebuilds={report['pool_rebuilds']} "
              f"healed={report['healed']} ok={report['ok']}", flush=True)
    return out


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run(out: str = DEFAULT_OUT, smoke: bool = False,
        n_papers: Optional[int] = None,
        shard_counts: Optional[Sequence[int]] = None,
        worker_counts: Optional[Sequence[int]] = None,
        rounds: Optional[int] = None) -> Dict[str, object]:
    n_papers = n_papers or (600 if smoke else 2400)
    shard_counts = list(shard_counts or ([2] if smoke else [2, 4]))
    worker_counts = list(worker_counts or ([0] if smoke else [0, 1]))
    rounds = rounds or (2 if smoke else 4)
    ladder = [2] if smoke else [1, 2, 4]
    k = 10
    baseline_rounds = 1 if smoke else 3

    print(f"corpus: dblp n_papers={n_papers} seed={SEED}", flush=True)
    db = build_corpus(n_papers)
    queries = build_workload()

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        db_dir = os.path.join(tmp, "db")
        db.save(db_dir, format_version=3)
        workload_path = os.path.join(tmp, "workload.txt")
        with open(workload_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(queries) + "\n")
        print("baseline: cold-process serve-batch ...", flush=True)
        baseline = run_baseline(db_dir, workload_path, queries,
                                baseline_rounds, k)
        print(f"  {baseline['qps']:.1f} qps "
              f"(p50 inproc {baseline['inproc_p50_ms']:.2f} ms)",
              flush=True)

    grid: List[Dict[str, object]] = []
    for shards in shard_counts:
        for workers in worker_counts:
            print(f"daemon: shards={shards} workers={workers} ...",
                  flush=True)
            cell = run_grid_cell(db, shards, workers, queries, rounds,
                                 k, ladder)
            print(f"  {cell['qps']:.1f} qps @ {cell['clients_best']} "
                  f"clients (p99 {cell['p99_ms']:.2f} ms)", flush=True)
            grid.append(cell)

    print("overload: 12 clients vs 2 slots ...", flush=True)
    overload = run_overload(db, queries, k)
    print(f"  accepted {overload['accepted']}/{overload['offered']}, "
          f"429={overload['rejected_queue_full']} "
          f"504={overload['rejected_deadline']}", flush=True)

    print("tracing overhead: on/off drive + obs-tail microbench ...",
          flush=True)
    tracing_overhead = run_tracing_overhead(db, queries, k, rounds)
    print(f"  traced p50 {tracing_overhead['traced']['p50_ms']:.2f} ms, "
          f"obs tail {tracing_overhead['obs_tail_p50_ms']*1000:.1f} us "
          f"({tracing_overhead['obs_tail_share_of_p50']:.2%} of p50, "
          f"budget {tracing_overhead['budget']:.0%})", flush=True)

    print("supervision overhead: on/off drive + breaker microbench ...",
          flush=True)
    supervision_overhead = run_supervision_overhead(db, queries, k,
                                                    rounds)
    print(f"  supervised p50 "
          f"{supervision_overhead['supervised']['p50_ms']:.2f} ms, "
          f"sup tail "
          f"{supervision_overhead['sup_tail_p50_ms']*1000:.1f} us "
          f"({supervision_overhead['sup_tail_share_of_p50']:.2%} of p50, "
          f"budget {supervision_overhead['budget']:.0%})", flush=True)

    print("chaos: seeded fault mixes vs self-healing SLOs ...",
          flush=True)
    chaos_section = run_chaos_section(
        db, k, requests=60 if smoke else 200)

    speedups = {}
    for shards in shard_counts:
        best = max((c["qps"] for c in grid if c["shards"] == shards),
                   default=0.0)
        speedups[f"daemon_s{shards}_vs_baseline"] = \
            best / baseline["qps"] if baseline["qps"] else 0.0
    best_cell = max(grid, key=lambda c: c["qps"])

    print("accounting overhead: per-query tail microbench ...",
          flush=True)
    accounting_overhead = run_accounting_overhead(best_cell["p50_ms"])
    print(f"  acct tail "
          f"{accounting_overhead['acct_tail_p50_ms']*1000:.1f} us "
          f"({accounting_overhead['acct_tail_share_of_p50']:.2%} of "
          f"p50, budget {accounting_overhead['budget']:.0%})",
          flush=True)
    report = {
        "schema": SCHEMA,
        "config": {
            "scale": "serve-smoke" if smoke else "serve-small",
            "n_papers": n_papers,
            "seed": SEED,
            "shard_counts": shard_counts,
            "worker_counts": worker_counts,
            "client_ladder": ladder,
            "rounds": rounds,
            "k": k,
        },
        "workload": {
            "queries": [q.split() for q in queries],
            "semantics": "elca",
            "distinct": len(queries),
            "requests_per_round": len(queries),
        },
        "baseline": baseline,
        "grid": grid,
        "speedups": speedups,
        "overload": overload,
        "tracing_overhead": tracing_overhead,
        "supervision_overhead": supervision_overhead,
        "accounting_overhead": accounting_overhead,
        "chaos": chaos_section,
        # the guarded series for `repro regress` -- per-request p50s
        "ops": {
            "serve_daemon_topk": {
                "p50_ms": best_cell["p50_ms"],
                "p95_ms": best_cell["p95_ms"],
                "repeats": best_cell["requests"],
            },
            "serve_baseline_topk": {
                "p50_ms": baseline["inproc_p50_ms"],
                "p95_ms": baseline["inproc_p95_ms"],
                "repeats": len(queries),
            },
            "serve_daemon_topk_traced": {
                "p50_ms": tracing_overhead["traced"]["p50_ms"],
                "p95_ms": tracing_overhead["traced"]["p95_ms"],
                "repeats": tracing_overhead["traced"]["requests"],
            },
            "serve_obs_tail": {
                "p50_ms": tracing_overhead["obs_tail_p50_ms"],
                "p95_ms": tracing_overhead["obs_tail_p95_ms"],
                "repeats": 300,
            },
            "serve_daemon_topk_chaosoff": {
                "p50_ms": supervision_overhead["supervised"]["p50_ms"],
                "p95_ms": supervision_overhead["supervised"]["p95_ms"],
                "repeats": supervision_overhead["supervised"]["requests"],
            },
            "serve_accounting_tail": {
                "p50_ms": accounting_overhead["acct_tail_p50_ms"],
                "p95_ms": accounting_overhead["acct_tail_p95_ms"],
                "repeats": 2000,
            },
        },
    }
    if smoke:
        _assert_smoke_invariants(report)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {out}", flush=True)
    return report


def _assert_smoke_invariants(report: Dict[str, object]) -> None:
    """What the CI smoke job keys off: the daemon shed under overload
    with typed rejections, nothing was left queued, and the report has
    the guarded ops the regress series tracks."""
    overload = report["overload"]
    assert overload["rejected_queue_full"] + \
        overload["rejected_deadline"] > 0, "overload did not shed"
    assert overload["queue_depth_after"] == 0, "queue did not drain"
    for cell in report["grid"]:
        assert cell["queue_depth_after"] == 0
    assert "serve_daemon_topk" in report["ops"]
    assert "serve_daemon_topk_traced" in report["ops"]
    tov = report["tracing_overhead"]
    assert tov["guard_ok"], \
        (f"observability tail {tov['obs_tail_share_of_p50']:.2%} of "
         f"daemon p50 exceeds the {tov['budget']:.0%} budget")
    sup = report["supervision_overhead"]
    assert sup["guard_ok"], \
        (f"supervision tail {sup['sup_tail_share_of_p50']:.2%} of "
         f"daemon p50 exceeds the {sup['budget']:.0%} budget")
    assert "serve_daemon_topk_chaosoff" in report["ops"]
    acct = report["accounting_overhead"]
    assert acct["guard_ok"], \
        (f"accounting tail {acct['acct_tail_share_of_p50']:.2%} of "
         f"daemon p50 exceeds the {acct['budget']:.0%} budget")
    assert "serve_accounting_tail" in report["ops"]
    for mix, cell in report["chaos"].items():
        assert cell["ok"], f"chaos mix {mix} violated self-healing " \
                           f"SLOs: {cell['violations']}"
    if "p99_accepted_ms" in overload:
        assert overload["p99_accepted_ms"] <= \
            overload["deadline_ms"] * 1.5 + 100.0, \
            "accepted p99 breached the deadline budget"
    print("smoke invariants ok", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.serve",
        description="sustained-qps/p99 benchmark for repro serve "
                    "(BENCH_serve.json)")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: small corpus, one grid cell, "
                             "asserts the smoke invariants")
    parser.add_argument("--papers", type=int, default=None)
    parser.add_argument("--shards", type=int, nargs="+", default=None)
    parser.add_argument("--workers", type=int, nargs="+", default=None)
    parser.add_argument("--rounds", type=int, default=None)
    args = parser.parse_args(argv)
    run(out=args.out, smoke=args.smoke, n_papers=args.papers,
        shard_counts=args.shards, worker_counts=args.workers,
        rounds=args.rounds)
    return 0


if __name__ == "__main__":
    sys.exit(main())
