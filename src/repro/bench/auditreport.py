"""Plan-audit reports for the paper workloads: the CI artifact.

Runs the §III-C plan auditor (`repro.obs.audit`) over the Figure 9
complete-search workload (the DBLP frequency sweep) and the Figure 10
correlated top-K workload -- the query family where cardinality
estimation is actually at risk -- and writes one JSON report per
figure::

    PYTHONPATH=src python -m repro.bench.auditreport --small --out-dir audit-reports/

Each report is a list of `PlanAudit.as_dict()` payloads plus a summary
(worst q-error, flagged levels, total regret) the CI job prints.  The
reports are uploaded as a build artifact so a plan-quality drift is
diagnosable from the run page without reproducing locally.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional, Sequence

from ..obs.audit import audit_query
from .harness import BenchConfig, Workbench

DEFAULT_OUT_DIR = "audit-reports"


def audit_workload(db, term_lists: Sequence[Sequence[str]],
                   label: str, shadow: str = "off") -> Dict:
    """Audit every query of one workload against `db`'s indexes."""
    audits = []
    for terms in term_lists:
        audit = audit_query(db.columnar_index, list(terms), shadow=shadow)
        audits.append(audit.as_dict())
    flagged = sum(1 for a in audits
                  for level in a["levels"] if level["flags"])
    worst_q = max((a["max_q_error"] for a in audits), default=1.0)
    regret = sum(a["total_regret_ms"] for a in audits)
    return {
        "workload": label,
        "shadow": shadow,
        "queries": len(audits),
        "summary": {
            "flagged_levels": flagged,
            "worst_q_error": worst_q,
            "total_regret_ms": regret,
        },
        "audits": audits,
    }


def fig9_report(bench: Workbench, shadow: str = "off") -> Dict:
    """The Figure 9 k=2 frequency sweep on DBLP."""
    term_lists = [list(spec.terms)
                  for spec in bench.builder.frequency_sweep(2)]
    return audit_workload(bench.dblp, term_lists, "fig9-dblp-sweep",
                          shadow=shadow)


def fig10_report(bench: Workbench, shadow: str = "off") -> Dict:
    """The Figure 10(b)-(c) correlated queries on DBLP -- the family
    built to stress the independence assumption."""
    term_lists = [list(spec.terms)
                  for spec in bench.builder.correlated_queries()]
    return audit_workload(bench.dblp, term_lists, "fig10-dblp-correlated",
                          shadow=shadow)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="emit plan-audit reports for the fig-9/fig-10 "
                    "workloads")
    parser.add_argument("--small", action="store_true",
                        help="smoke-scale corpus (CI)")
    parser.add_argument("--out-dir", default=DEFAULT_OUT_DIR)
    parser.add_argument("--shadow", default="off",
                        choices=("off", "sampled", "all"))
    args = parser.parse_args(argv)

    bench = Workbench(BenchConfig.small() if args.small else BenchConfig())
    os.makedirs(args.out_dir, exist_ok=True)
    status = 0
    for name, build in (("AUDIT_fig9.json", fig9_report),
                        ("AUDIT_fig10.json", fig10_report)):
        report = build(bench, shadow=args.shadow)
        path = os.path.join(args.out_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        summary = report["summary"]
        print(f"{path}: {report['queries']} queries, "
              f"worst q-error {summary['worst_q_error']:.2f}, "
              f"{summary['flagged_levels']} flagged levels, "
              f"regret {summary['total_regret_ms']:.2f}ms")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
