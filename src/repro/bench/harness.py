"""Benchmark harness: regenerates the paper's tables and figures.

The experiments (paper section V) run against synthetic DBLP and XMark
corpora scaled to laptop size.  Absolute numbers differ from the paper's
Java/2.4GHz/1GB setup by construction; the harness exists to check the
*shapes*: which algorithm wins in which regime, and where the crossovers
fall.  Every table/figure has one function returning printable rows, and
``python -m repro.bench.harness`` prints the whole evaluation section
(that output is the source of EXPERIMENTS.md).

Scaling note: the paper fixes the high frequency at 100k on a 496 MB
DBLP; we fix it at ``high_freq`` (default 4000) on a ~20k-paper corpus,
keeping the 10x-per-step low-frequency ladder, so every ratio the paper
varies is preserved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import ExecutionStats, sort_by_score
from ..algorithms.join_based import JoinBasedSearch
from ..api import XMLDatabase
from ..datagen.dblp import DBLPGenerator
from ..datagen.workload import QuerySpec, WorkloadBuilder
from ..datagen.xmark import XMarkGenerator
from ..index import storage
from ..planner.plans import JoinPlanner
from ..scoring.ranking import DampingFunction, RankingModel


@dataclass
class BenchConfig:
    """Corpus and workload scale for one harness run."""

    seed: int = 7
    # The workload builder has its own RNG stream; pinning it here (and
    # recording it in emitted reports) keeps BENCH_hotpath.json reruns
    # comparable across commits -- the perf-regression time series
    # (repro.bench.regress) depends on identical workloads.
    workload_seed: int = 11
    n_papers: int = 20_000
    xmark_scale: float = 0.05
    high_freq: int = 4_000
    low_freqs: Tuple[int, ...] = (10, 100, 1_000, 4_000)
    per_cell: int = 2
    max_keywords: int = 5
    # Correlated queries mirror the paper's "sensor network" picks:
    # *frequent* keywords that co-occur, so complete evaluation has a lot
    # to chew on while top-K can stop after a handful of completions.
    correlated_entities: int = 2_500
    topk: int = 10
    # The paper only requires d(.) to be decreasing (0.9 in its worked
    # example).  Benchmarks use 0.8: with synthetic planted terms the
    # score spread is narrower than real tf-idf, and a slightly steeper
    # damping restores the level separation the top-K thresholds need.
    damping_base: float = 0.8

    @classmethod
    def small(cls) -> "BenchConfig":
        """A fast configuration for smoke runs and CI."""
        return cls(n_papers=3_000, xmark_scale=0.01, high_freq=600,
                   low_freqs=(10, 60, 600), correlated_entities=600)


class Workbench:
    """Lazily built corpora + workloads shared by all experiments."""

    def __init__(self, config: Optional[BenchConfig] = None):
        self.config = config if config is not None else BenchConfig()
        self.builder = WorkloadBuilder(
            high_freq=self.config.high_freq,
            low_freqs=self.config.low_freqs,
            per_cell=self.config.per_cell,
            max_keywords=self.config.max_keywords,
            correlated_entities=self.config.correlated_entities,
            seed=self.config.workload_seed)
        self._dblp: Optional[XMLDatabase] = None
        self._xmark: Optional[XMLDatabase] = None

    @property
    def dblp(self) -> XMLDatabase:
        if self._dblp is None:
            # Abstracts matter: with a single text node per paper, every
            # planted co-occurrence collapses into one node and damping
            # never comes into play (every result would sit at the
            # occurrence level, which flatters RDIL's undamped bound).
            tree = DBLPGenerator(seed=self.config.seed,
                                 n_papers=self.config.n_papers,
                                 abstract_words=12,
                                 plan=self.builder.plan()).generate()
            self._dblp = XMLDatabase.from_tree(tree,
                                               ranking=self._ranking())
        return self._dblp

    def _ranking(self) -> RankingModel:
        return RankingModel(
            damping=DampingFunction(self.config.damping_base))

    @property
    def xmark(self) -> XMLDatabase:
        if self._xmark is None:
            tree = XMarkGenerator(seed=self.config.seed,
                                  scale=self.config.xmark_scale,
                                  plan=self.builder.plan()).generate()
            self._xmark = XMLDatabase.from_tree(tree,
                                                ranking=self._ranking())
        return self._xmark

    def warm(self, db: XMLDatabase, queries: Sequence[QuerySpec]) -> None:
        """Build indexes and columns once, outside any timed region
        (the paper's experiments run on a hot cache)."""
        db.inverted_index
        index = db.columnar_index
        for spec in queries:
            for term in spec.terms:
                postings = index.term_postings(term)
                for level in range(1, postings.max_len + 1):
                    postings.column(level)


# ---------------------------------------------------------------------------
# timed runners
# ---------------------------------------------------------------------------

def make_engine(db: XMLDatabase, algorithm: str):
    """A complete-result engine for `algorithm` over `db`'s indexes."""
    from ..algorithms.index_based import IndexBasedSearch
    from ..algorithms.stack_based import StackBasedSearch

    if algorithm == "join":
        return JoinBasedSearch(db.columnar_index)
    if algorithm == "stack":
        return StackBasedSearch(db.inverted_index)
    if algorithm == "index":
        return IndexBasedSearch(db.inverted_index)
    raise ValueError(f"unknown complete-result algorithm {algorithm!r}")


def run_complete(db: XMLDatabase, queries: Sequence[QuerySpec],
                 algorithm: str, semantics: str = "elca",
                 with_scores: bool = False) -> int:
    """Evaluate every query's complete result set; returns result count.

    Wrap this in a timer / pytest-benchmark for the Figure 9 cells.
    Scores are off by default: the figure measures semantic evaluation,
    matching the baselines' original implementations.
    """
    total = 0
    for spec in queries:
        engine = make_engine(db, algorithm)
        results, _stats = engine.evaluate(list(spec.terms), semantics,
                                          with_scores=with_scores)
        total += len(results)
    return total


def run_topk(db: XMLDatabase, queries: Sequence[QuerySpec], algorithm: str,
             k: int, semantics: str = "elca") -> int:
    """Evaluate every query's top-k; returns result count."""
    total = 0
    for spec in queries:
        total += len(db.search_topk(list(spec.terms), k,
                                    semantics=semantics,
                                    algorithm=algorithm))
    return total


def timed(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall time in milliseconds (used by the CLI report)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


# ---------------------------------------------------------------------------
# Table I: index sizes
# ---------------------------------------------------------------------------

def table1_rows(bench: Workbench) -> List[Tuple[str, str, float]]:
    """(corpus, structure, KiB) rows for Table I."""
    rows: List[Tuple[str, str, float]] = []
    for name, db in (("DBLP", bench.dblp), ("XMark", bench.xmark)):
        report = storage.measure_sizes(db.columnar_index, db.inverted_index)
        for structure, size in report.as_rows():
            rows.append((name, structure, size / 1024.0))
    return rows


def check_table1_shape(rows: List[Tuple[str, str, float]]) -> List[str]:
    """The qualitative claims of Table I; returns violated claims."""
    problems = []
    for corpus in ("DBLP", "XMark"):
        sizes = {structure: kib for c, structure, kib in rows
                 if c == corpus}
        il = sizes["join-based IL"]
        if not sizes["index-based B-tree"] > 2 * sizes["stack-based IL"]:
            problems.append(f"{corpus}: B-tree not >> stack IL")
        if not il < 2 * sizes["stack-based IL"]:
            problems.append(f"{corpus}: join IL far larger than stack IL")
        if not il < sizes["top-K join IL"] < 2 * il:
            problems.append(f"{corpus}: top-K IL overhead out of range")
        if not sizes["RDIL B-tree"] > 0.5 * sizes["RDIL IL"]:
            problems.append(f"{corpus}: RDIL B-tree unexpectedly small")
    return problems


# ---------------------------------------------------------------------------
# Figure 9: complete-result query performance
# ---------------------------------------------------------------------------

FIG9_ALGORITHMS = ("join", "stack", "index")


def fig9_cells(bench: Workbench, n_keywords: int
               ) -> List[Tuple[int, List[QuerySpec]]]:
    """(low_frequency, queries) cells for one Figure 9 panel."""
    queries = bench.builder.frequency_sweep(n_keywords)
    cells: Dict[int, List[QuerySpec]] = {}
    for spec in queries:
        cells.setdefault(spec.low_frequency, []).append(spec)
    return sorted(cells.items())


def fig9_equal_cells(bench: Workbench, freq: int,
                     k_values: Sequence[int] = (2, 3, 4, 5)
                     ) -> List[Tuple[int, List[QuerySpec]]]:
    """(n_keywords, queries) cells for Figure 9(e)-(f)."""
    return [(k, bench.builder.equal_frequency(k, freq)) for k in k_values
            if k <= bench.config.max_keywords]


def fig9_rows(bench: Workbench, n_keywords: int,
              repeats: int = 3) -> List[Tuple[int, str, float]]:
    """(low_freq, algorithm, ms) rows for Figure 9(a)-(d)."""
    db = bench.dblp
    rows = []
    for low, queries in fig9_cells(bench, n_keywords):
        bench.warm(db, queries)
        for algorithm in FIG9_ALGORITHMS:
            ms = timed(lambda: run_complete(db, queries, algorithm),
                       repeats)
            rows.append((low, algorithm, ms / len(queries)))
    return rows


def fig9_equal_rows(bench: Workbench, freq: int,
                    repeats: int = 3) -> List[Tuple[int, str, float]]:
    """(n_keywords, algorithm, ms) rows for Figure 9(e)-(f)."""
    db = bench.dblp
    rows = []
    for k, queries in fig9_equal_cells(bench, freq):
        bench.warm(db, queries)
        for algorithm in FIG9_ALGORITHMS:
            ms = timed(lambda: run_complete(db, queries, algorithm),
                       repeats)
            rows.append((k, algorithm, ms / len(queries)))
    return rows


# ---------------------------------------------------------------------------
# Figure 10: top-K query performance
# ---------------------------------------------------------------------------

FIG10_ALGORITHMS = ("topk-join", "join", "rdil")
# Section V-D's hybrid joins the correlated-query comparison: it should
# track the better of the two join-based plans per query.
FIG10BC_ALGORITHMS = ("topk-join", "join", "rdil", "hybrid")


def fig10a_rows(bench: Workbench, n_keywords: int = 2,
                repeats: int = 3) -> List[Tuple[int, str, float]]:
    """(low_freq, algorithm, ms) rows for Figure 10(a): random
    (low-correlation) queries."""
    db = bench.dblp
    k = bench.config.topk
    rows = []
    for low, queries in fig9_cells(bench, n_keywords):
        bench.warm(db, queries)
        for algorithm in FIG10_ALGORITHMS:
            ms = timed(lambda: run_topk(db, queries, algorithm, k), repeats)
            rows.append((low, algorithm, ms / len(queries)))
    return rows


def fig10bc_rows(bench: Workbench,
                 repeats: int = 3) -> List[Tuple[str, str, float]]:
    """(query_label, algorithm, ms) rows for Figure 10(b)-(c):
    correlated queries."""
    db = bench.dblp
    k = bench.config.topk
    rows = []
    for spec in bench.builder.correlated_queries():
        bench.warm(db, [spec])
        for algorithm in FIG10BC_ALGORITHMS:
            ms = timed(
                lambda: run_topk(db, [spec], algorithm, k), repeats)
            rows.append((spec.label, algorithm, ms))
    return rows


def fig10_work_rows(bench: Workbench) -> List[Tuple[str, str, int]]:
    """Scale-free companion to Figure 10(b)-(c): data items touched.

    Wall-clock comparisons between the complete join (numpy-vectorized)
    and the rank join (pointer-chasing Python) carry a language constant
    the paper's Java implementations did not have, so the shape claim
    "top-K terminates much earlier on correlated queries" is checked in
    the paper's own currency -- how much of the inverted lists each
    algorithm reads:

    * ``topk-join``: ranked cursor pops (+ erasure reads) before the
      K-th emission;
    * ``join``: every column entry of every level (the complete
      algorithm always reads them all);
    * ``rdil``: score-ordered pops plus index lookups.
    """
    from ..algorithms.rdil import RDILSearch
    from ..algorithms.topk_keyword import TopKKeywordSearch

    db = bench.dblp
    k = bench.config.topk
    rows: List[Tuple[str, str, int]] = []
    for spec in bench.builder.correlated_queries():
        bench.warm(db, [spec])
        terms = list(spec.terms)
        result = TopKKeywordSearch(db.columnar_index).search(terms, k)
        rows.append((spec.label, "topk-join", result.stats.tuples_scanned))
        postings = db.columnar_index.query_postings(terms)
        start = min(p.max_len for p in postings)
        column_entries = sum(len(p.column(level))
                             for p in postings
                             for level in range(1, start + 1))
        rows.append((spec.label, "join", column_entries))
        rdil = RDILSearch(db.inverted_index).search(terms, k)
        rows.append((spec.label, "rdil",
                     rdil.stats.tuples_scanned + rdil.stats.lookups))
    return rows


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def ablation_join_policy_rows(bench: Workbench, repeats: int = 3
                              ) -> List[Tuple[int, str, float, int, int]]:
    """Section III-C claim: dynamic join choice vs forced merge/index.

    Reports wall time plus the work counters (tuples merged, index
    probes): the counters carry the signal at laptop scale, where numpy
    makes both intersection kernels fast in absolute terms.
    """
    db = bench.dblp
    rows = []
    for low, queries in fig9_cells(bench, n_keywords=3):
        bench.warm(db, queries)
        for policy in ("dynamic", "merge", "index"):
            engine = JoinBasedSearch(db.columnar_index, JoinPlanner(policy))

            def run():
                folded = ExecutionStats()
                for spec in queries:
                    _, stats = engine.evaluate(list(spec.terms), "elca",
                                               with_scores=False)
                    folded.merge(stats)
                return folded

            ms = timed(run, repeats) / len(queries)
            folded = run()
            rows.append((low, policy, ms, folded.tuples_scanned,
                         folded.lookups))
    return rows


def ablation_bound_rows(bench: Workbench) -> List[Tuple[str, str, int]]:
    """Section IV-B claim: the star-join group bound retrieves fewer
    tuples than the classic HRJN bound before the top-K unblocks."""
    from ..algorithms.topk_keyword import TopKKeywordSearch

    db = bench.dblp
    k = bench.config.topk
    rows = []
    for spec in bench.builder.correlated_queries():
        bench.warm(db, [spec])
        for bound in ("group", "classic"):
            engine = TopKKeywordSearch(db.columnar_index, bound_mode=bound)
            result = engine.search(list(spec.terms), k)
            rows.append((spec.label, bound, result.stats.tuples_scanned))
    return rows


def ablation_compression_rows(bench: Workbench
                              ) -> List[Tuple[str, str, float]]:
    """Section III-D claim: per-scheme compressed vs raw column bytes."""
    from ..index.compression import compress_column, uncompressed_size

    totals = {"rle": [0, 0], "delta": [0, 0]}
    index = bench.dblp.columnar_index
    for term in index.vocabulary:
        postings = index.term_postings(term)
        for level in range(1, postings.max_len + 1):
            column = postings.column(level)
            scheme, blob = compress_column(column.values)
            totals[scheme][0] += uncompressed_size(column.values)
            totals[scheme][1] += len(blob)
    rows = []
    for scheme, (raw, packed) in totals.items():
        if raw:
            rows.append((scheme, "raw KiB", raw / 1024.0))
            rows.append((scheme, "compressed KiB", packed / 1024.0))
            rows.append((scheme, "ratio", raw / packed))
    return rows


def ablation_eraser_rows(bench: Workbench, repeats: int = 3
                         ) -> List[Tuple[str, str, float]]:
    """Section III-E: per-row bitmap vs range-checking interval pruning."""
    db = bench.dblp
    queries = bench.builder.correlated_queries()
    bench.warm(db, queries)
    rows = []
    for mode in ("bitmap", "interval"):
        engine = JoinBasedSearch(db.columnar_index, eraser_mode=mode)

        def run():
            for spec in queries:
                engine.evaluate(list(spec.terms), "elca", with_scores=False)

        rows.append(("correlated", mode, timed(run, repeats)))
    return rows


# ---------------------------------------------------------------------------
# CLI report
# ---------------------------------------------------------------------------

def _print_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> None:
    print(f"\n### {title}")
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) + 2
              for i, h in enumerate(header)]
    print("".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def main(config: Optional[BenchConfig] = None) -> None:
    bench = Workbench(config)
    print(f"# Reproduction report (n_papers={bench.config.n_papers}, "
          f"high_freq={bench.config.high_freq})")
    t0 = time.perf_counter()
    bench.dblp
    bench.xmark
    print(f"corpora built in {time.perf_counter() - t0:.1f}s: "
          f"DBLP {len(bench.dblp)} nodes, XMark {len(bench.xmark)} nodes")

    rows = table1_rows(bench)
    _print_table("Table I: index sizes (KiB)",
                 ("corpus", "structure", "KiB"), rows)
    problems = check_table1_shape(rows)
    print("shape check:", "OK" if not problems else problems)

    for k in (2, 3, 4, 5):
        _print_table(f"Figure 9({'abcd'[k - 2]}): k={k}, "
                     "high fixed, low varies (ms/query)",
                     ("low_freq", "algorithm", "ms"), fig9_rows(bench, k))
    for freq in (bench.config.low_freqs[1], bench.config.low_freqs[2]):
        _print_table(f"Figure 9(e/f): equal frequency {freq} (ms/query)",
                     ("k", "algorithm", "ms"),
                     fig9_equal_rows(bench, freq))
    _print_table("Figure 10(a): top-10, random queries (ms/query)",
                 ("low_freq", "algorithm", "ms"), fig10a_rows(bench))
    _print_table("Figure 10(b/c): top-10, correlated queries (ms/query)",
                 ("query", "algorithm", "ms"), fig10bc_rows(bench))
    _print_table("Figure 10(b/c) in work units: data items touched",
                 ("query", "algorithm", "items"), fig10_work_rows(bench))
    _print_table("Ablation: join policy (k=3)",
                 ("low_freq", "policy", "ms", "tuples", "probes"),
                 ablation_join_policy_rows(bench))
    _print_table("Ablation: top-K bound (tuples retrieved)",
                 ("query", "bound", "tuples"), ablation_bound_rows(bench))
    _print_table("Ablation: compression",
                 ("scheme", "metric", "value"),
                 ablation_compression_rows(bench))
    _print_table("Ablation: erasure structure (ms, correlated set)",
                 ("workload", "mode", "ms"), ablation_eraser_rows(bench))


if __name__ == "__main__":
    import sys

    main(BenchConfig.small() if "--small" in sys.argv else None)
