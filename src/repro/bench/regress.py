"""Perf-regression time series over the hot-path baseline.

``BENCH_hotpath.json`` is one run; this module turns the runs into a
trajectory.  `append_run` folds a baseline report into
``BENCH_history.jsonl`` -- one JSON line per run, stamped with the git
SHA and an environment fingerprint -- and `check` compares the latest
entry against the trailing median of comparable history (same scale,
same environment), flagging any guarded op whose p50 regressed by more
than the threshold::

    PYTHONPATH=src python -m repro.bench.regress --append BENCH_hotpath.json
    PYTHONPATH=src python -m repro.bench.regress --check

(also exposed as ``repro regress``).  The check exits non-zero on a
regression, which is what the CI ``perf-audit`` job keys off.

Robustness choices, all aimed at "fail on real regressions, never on
noise or machine changes":

* the reference is the **median** of the last `window` comparable runs,
  not the single previous run, so one slow CI machine does not poison
  the next comparison;
* entries only compare against history with the same ``scale`` label
  and the same environment fingerprint -- a committed laptop entry can
  never fail a CI runner, and vice versa; each environment builds its
  own trajectory;
* with fewer than `min_history` comparable prior runs the check
  *passes* (there is nothing trustworthy to compare against -- the
  first runs on a fresh environment just seed the series);
* a regression must clear the relative threshold **and** an absolute
  floor (`min_delta_ms`, default 0.05ms): several guarded ops sit in
  the tens of microseconds, where a "+30%" swing is a handful of
  microseconds of allocator/timer jitter, not a code change.  Ops in
  the millisecond range are unaffected -- any >15% move on them dwarfs
  the floor.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

HISTORY_SCHEMA = "repro.bench.history/v1"
DEFAULT_HISTORY = "BENCH_history.jsonl"
DEFAULT_THRESHOLD = 0.15   # >15% p50 regression fails
DEFAULT_WINDOW = 5         # trailing runs the median is taken over
DEFAULT_MIN_HISTORY = 2    # comparable priors needed before checking
DEFAULT_MIN_DELTA_MS = 0.05  # absolute p50 growth a regression must show

# The ops the CI gate guards: the serving hot path.  The scalar
# reference ops are deliberately absent -- they exist to measure
# speedup, not to be fast.
GUARDED_OPS = (
    "level_loop_vectorized",
    "erased_counts_bulk",
    "mark_many_bulk",
    "decompress_column_vectorized",
    "query_uncached",
    "query_cached",
    # The serve bench (BENCH_serve.json) appends under its own scale
    # label, so these build a separate trajectory from the hot-path ops
    # above and the two series can never fail each other's checks.
    "serve_daemon_topk",
    "serve_baseline_topk",
    # Observability-PR additions to the serve series: the daemon p50
    # with tracing + access log on, and the microbenchmarked
    # per-request observability tail (stitch + sample + store + log +
    # SLO record) -- the latter is microsecond-stable, so a regression
    # in the observability code itself fails the gate directly.
    "serve_daemon_topk_traced",
    "serve_obs_tail",
    # Self-healing-PR addition: the daemon p50 with the full
    # supervision layer (breakers + retry/hedge plumbing) enabled and
    # chaos disabled -- the production config.  Guarding it proves the
    # resilience machinery stays within its <=5% overhead budget as
    # the code evolves.
    "serve_daemon_topk_chaosoff",
    # Workload-intelligence-PR additions: the microbenchmarked
    # per-query resource-accounting tail (always-on, so a regression in
    # the accounting code itself fails the serve series directly), and
    # the replay p50 -- `repro replay --append` files its report under
    # scale="replay", building a third independent trajectory that
    # catches end-to-end slowdowns on a fixed captured workload.
    "serve_accounting_tail",
    "replay_query",
    # Format-v4-PR additions to the hot-path series: the FOR/bit-packed
    # column decode, the roaring eraser's bulk mark+count cycle (the
    # engines' new default), and warm decoded-column-cache hits -- the
    # three codepaths the v4 codec generation is betting on.
    "decode_for",
    "erase_bitmap_ops",
    "decode_cache_hit",
)


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current commit's SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def env_fingerprint() -> Dict[str, Any]:
    """What makes two runs' wall times comparable.

    Two entries compare only when every one of these match: latency
    shifts from a new interpreter, a different machine or a numpy
    upgrade are environment changes, not code regressions.
    """
    import numpy

    return {
        "platform": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }


def history_entry(report: Dict[str, Any],
                  sha: Optional[str] = None,
                  env: Optional[Dict[str, Any]] = None,
                  timestamp: Optional[float] = None) -> Dict[str, Any]:
    """One JSONL line: the report's ops + provenance, no bulky payloads
    (the per-run ``metrics``/``workload`` blobs stay in the full
    BENCH_hotpath.json)."""
    config = dict(report.get("config", {}))
    return {
        "schema": HISTORY_SCHEMA,
        "timestamp": time.time() if timestamp is None else timestamp,
        "git_sha": git_sha() if sha is None else sha,
        "env": env_fingerprint() if env is None else env,
        "scale": config.get("scale", "unknown"),
        "config": config,
        "ops": report.get("ops", {}),
        "speedups": report.get("speedups", {}),
    }


def append_run(report: Dict[str, Any], history_path: str = DEFAULT_HISTORY,
               **kwargs) -> Dict[str, Any]:
    """Append `report` to the history file; returns the written entry."""
    entry = history_entry(report, **kwargs)
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(history_path: str = DEFAULT_HISTORY
                 ) -> List[Dict[str, Any]]:
    """All entries, oldest first.  Malformed lines are skipped (a
    truncated append must not wedge the CI gate forever)."""
    entries: List[Dict[str, Any]] = []
    if not os.path.exists(history_path):
        return entries
    with open(history_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and entry.get("ops"):
                entries.append(entry)
    return entries


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _comparable(entry: Dict[str, Any], latest: Dict[str, Any]) -> bool:
    return (entry.get("scale") == latest.get("scale")
            and entry.get("env") == latest.get("env"))


def _op_p50(entry: Dict[str, Any], op: str) -> Optional[float]:
    data = entry.get("ops", {}).get(op)
    if not isinstance(data, dict):
        return None
    p50 = data.get("p50_ms")
    return float(p50) if p50 is not None else None


@dataclass
class OpDelta:
    """Latest run vs. trailing median, for one guarded op."""

    op: str
    latest_ms: float
    baseline_ms: float   # median of the comparable window
    window: int          # comparable prior runs the median covers

    @property
    def delta(self) -> float:
        """Fractional change; +0.20 means 20% slower than baseline."""
        if self.baseline_ms <= 0:
            return 0.0
        return self.latest_ms / self.baseline_ms - 1.0

    def format(self) -> str:
        return (f"{self.op}: {self.latest_ms:.3f}ms vs median "
                f"{self.baseline_ms:.3f}ms over {self.window} runs "
                f"({self.delta:+.1%})")


@dataclass
class RegressionReport:
    """The verdict of `check`: which guarded ops regressed."""

    checked: bool            # False when history was insufficient
    threshold: float
    min_delta_ms: float = DEFAULT_MIN_DELTA_MS
    deltas: List[OpDelta] = field(default_factory=list)
    reason: Optional[str] = None   # why nothing was checked
    # Guarded ops that could not be compared, each with why.  A newly
    # added guarded op has no comparable baseline on its first run;
    # reporting that explicitly (instead of silently dropping the op)
    # is what keeps "PASS" honest about its coverage.
    skipped: List[Tuple[str, str]] = field(default_factory=list)

    def _regressed(self, delta: OpDelta) -> bool:
        return (delta.delta > self.threshold
                and delta.latest_ms - delta.baseline_ms > self.min_delta_ms)

    @property
    def regressions(self) -> List[OpDelta]:
        return [d for d in self.deltas if self._regressed(d)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        if not self.checked:
            return f"regress: PASS (not checked: {self.reason})"
        lines = [f"regress: {'PASS' if self.ok else 'FAIL'} "
                 f"(threshold {self.threshold:+.0%} on p50, floor "
                 f"{self.min_delta_ms:g}ms)"]
        for delta in self.deltas:
            marker = "  !! " if self._regressed(delta) else "     "
            lines.append(marker + delta.format())
        for op, why in self.skipped:
            lines.append(f"     -- {op}: not checked ({why})")
        if not self.deltas and self.skipped:
            lines[0] = (f"regress: PASS (nothing comparable: all "
                        f"{len(self.skipped)} guarded ops skipped)")
        return "\n".join(lines)


def check(history: List[Dict[str, Any]],
          threshold: float = DEFAULT_THRESHOLD,
          window: int = DEFAULT_WINDOW,
          min_history: int = DEFAULT_MIN_HISTORY,
          min_delta_ms: float = DEFAULT_MIN_DELTA_MS,
          ops: Sequence[str] = GUARDED_OPS) -> RegressionReport:
    """Compare the newest entry against its comparable trailing median."""
    if not history:
        return RegressionReport(checked=False, threshold=threshold,
                                min_delta_ms=min_delta_ms,
                                reason="empty history")
    latest = history[-1]
    priors = [entry for entry in history[:-1]
              if _comparable(entry, latest)]
    if len(priors) < min_history:
        return RegressionReport(
            checked=False, threshold=threshold,
            min_delta_ms=min_delta_ms,
            reason=f"{len(priors)} comparable prior runs "
                   f"(need {min_history}) for scale="
                   f"{latest.get('scale')!r} on this environment")
    tail = priors[-window:]
    report = RegressionReport(checked=True, threshold=threshold,
                              min_delta_ms=min_delta_ms)
    for op in ops:
        latest_p50 = _op_p50(latest, op)
        if latest_p50 is None:
            report.skipped.append(
                (op, "not measured by the latest entry"))
            continue
        baseline = [p50 for p50 in (_op_p50(entry, op) for entry in tail)
                    if p50 is not None]
        if not baseline:
            report.skipped.append(
                (op, "no comparable prior run measures it yet -- "
                     "this entry seeds its series"))
            continue
        report.deltas.append(OpDelta(op=op, latest_ms=latest_p50,
                                     baseline_ms=_median(baseline),
                                     window=len(baseline)))
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro regress",
        description="perf-regression time series over BENCH_hotpath runs")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help=f"JSONL series (default {DEFAULT_HISTORY})")
    parser.add_argument("--append", metavar="REPORT_JSON",
                        help="fold a BENCH_hotpath.json into the history")
    parser.add_argument("--check", action="store_true",
                        help="compare the newest entry against the "
                             "trailing median; exit 1 on regression")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="fractional p50 regression that fails "
                             "(default 0.15)")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW)
    parser.add_argument("--min-history", type=int,
                        default=DEFAULT_MIN_HISTORY)
    parser.add_argument("--min-delta-ms", type=float,
                        default=DEFAULT_MIN_DELTA_MS,
                        help="absolute p50 growth a regression must "
                             "also show (default 0.05ms; filters "
                             "microsecond jitter on the fastest ops)")
    args = parser.parse_args(argv)

    if not args.append and not args.check:
        parser.error("nothing to do: pass --append and/or --check")

    if args.append:
        with open(args.append, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        entry = append_run(report, args.history)
        sha = entry.get("git_sha") or "no-git"
        print(f"appended {args.append} to {args.history} "
              f"(scale={entry['scale']}, sha={sha[:12]})")

    if args.check:
        verdict = check(load_history(args.history),
                        threshold=args.threshold, window=args.window,
                        min_history=args.min_history,
                        min_delta_ms=args.min_delta_ms)
        print(verdict.format())
        if not verdict.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
