"""Stack-based baseline (XRank's DIL family, [5], [6], [10]).

The classic document-order approach: merge all k Dewey posting lists
into one sorted stream and sweep it with a stack that mirrors the
current root-to-node path.  Each stack frame accumulates, for the node
it represents,

* ``contains`` -- the keywords present anywhere in the subtree seen so
  far, and
* ``free``     -- the keywords with a witness occurrence not blocked by
  a C-descendant (the ELCA exclusion rule),

plus the best damped per-keyword witness scores.  When a frame pops,
its node's ELCA/SLCA status is decided and its contribution is folded
into the parent frame (contributions from C-children are blocked).

The signature behaviour the paper measures: the sweep always scans
*every* posting of *every* list, so the running time is governed by the
highest-frequency keyword regardless of the others (flat lines in
Figure 9(a)-(d)).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from ..index.inverted import InvertedIndex
from ..scoring.ranking import RankingModel
from ..xmltree.dewey import Dewey
from .base import (ELCA, SLCA, ExecutionStats, SearchResult, check_semantics,
                   sort_by_document_order)


class _Frame:
    """State for one node on the current path."""

    __slots__ = ("component", "contains", "free", "scores", "has_c_child")

    def __init__(self, component: int, k: int):
        self.component = component
        self.contains = 0
        self.free = 0
        self.scores = [0.0] * k
        self.has_c_child = False


class StackBasedSearch:
    """Complete ELCA/SLCA evaluation by a document-order stack sweep."""

    def __init__(self, index: InvertedIndex):
        self.index = index
        self.ranking: RankingModel = index.ranking

    def evaluate(self, terms: Sequence[str], semantics: str = ELCA,
                 with_scores: bool = True
                 ) -> Tuple[List[SearchResult], ExecutionStats]:
        check_semantics(semantics)
        stats = ExecutionStats()
        terms = list(terms)
        if not terms:
            return [], stats
        lists = [self.index.term_list(t) for t in terms]
        if any(len(lst) == 0 for lst in lists):
            return [], stats
        k = len(terms)
        full = (1 << k) - 1
        decay = self.ranking.damping(1)

        # k-way merge of the document-ordered lists (bind i/lst eagerly:
        # a generator expression here would close over the loop vars).
        streams = [
            [(p.dewey, i, p.score) for p in lst.postings]
            for i, lst in enumerate(lists)
        ]
        stream = heapq.merge(*streams)

        stack: List[_Frame] = []
        results: List[SearchResult] = []

        def pop_frame() -> None:
            frame = stack.pop()
            node_dewey = tuple(f.component for f in stack) + (frame.component,)
            self._finish_node(frame, node_dewey, len(stack) + 1, full,
                              semantics, with_scores, results, stats)
            if stack:
                parent = stack[-1]
                parent.contains |= frame.contains
                if frame.contains == full:
                    parent.has_c_child = True
                else:
                    parent.free |= frame.free
                    if with_scores:
                        for i in range(k):
                            damped = frame.scores[i] * decay
                            if damped > parent.scores[i]:
                                parent.scores[i] = damped

        for dewey, term_idx, score in stream:
            stats.tuples_scanned += 1
            shared = 0
            limit = min(len(stack), len(dewey))
            while shared < limit and stack[shared].component == dewey[shared]:
                shared += 1
            while len(stack) > shared:
                pop_frame()
            for component in dewey[shared:]:
                stack.append(_Frame(component, k))
            top = stack[-1]
            top.contains |= 1 << term_idx
            top.free |= 1 << term_idx
            if with_scores and score > top.scores[term_idx]:
                top.scores[term_idx] = score
        while stack:
            pop_frame()
        return sort_by_document_order(results), stats

    def _finish_node(self, frame: _Frame, dewey: Dewey, level: int, full: int,
                     semantics: str, with_scores: bool,
                     results: List[SearchResult],
                     stats: ExecutionStats) -> None:
        if frame.contains != full:
            return
        stats.candidates_checked += 1
        if semantics == ELCA:
            is_result = frame.free == full
        else:
            is_result = not frame.has_c_child
        if not is_result:
            return
        node = self.index.tree.node_by_dewey(dewey)
        score = self.ranking.score_result(frame.scores) if with_scores else 0.0
        results.append(SearchResult(node, level, score, tuple(frame.scores)))
        stats.results_emitted += 1


def search(index: InvertedIndex, terms: Sequence[str],
           semantics: str = ELCA) -> List[SearchResult]:
    """One-shot convenience wrapper around `StackBasedSearch.evaluate`."""
    results, _stats = StackBasedSearch(index).evaluate(terms, semantics)
    return results
