"""RDIL baseline: Ranked Dewey Inverted Lists (XRank [5], section II-C).

The straightforward TA-style application the paper argues against: each
keyword's posting list is additionally sorted by the *local* score, and
the algorithm repeatedly

1. pops the globally best unseen occurrence ``v`` (round-robin over the
   score-sorted lists),
2. probes the document-ordered lists of the other keywords (the role of
   the B-trees RDIL builds) for the closest occurrences, yielding the
   deepest node containing ``v`` and all keywords,
3. verifies the candidate's ELCA/SLCA status with further lookups --
   the "checking irrelevant LCAs and their correlations" cost, since
   score order destroys the document-order pruning -- and scores it.

Results are emitted once their score reaches the unseen bound
``sum_i g_next_i``: a result is produced the first time *any* of its
free witnesses pops, so an unproduced result still has an unpopped free
witness in every list, making the bound sound (and slightly tighter
than the classic ``max_i (g_next_i + sum_{j != i} g_max_j)``).  The
bound ignores damping (d <= 1), which is exactly RDIL's weakness the
paper describes: a high local score says nothing about the damped
global score, so the bound stays loose and termination comes late.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..index.inverted import InvertedIndex, PostingList
from ..scoring.ranking import RankingModel
from ..xmltree.dewey import Dewey
from .base import (ELCA, SLCA, ExecutionStats, SearchResult, TopKResult,
                   check_semantics)
from .index_based import IndexBasedSearch


class _ScoreCursor:
    """Score-descending cursor over one posting list."""

    __slots__ = ("postings", "pos")

    def __init__(self, plist: PostingList):
        self.postings = plist.by_score_desc()
        self.pos = 0

    def peek(self) -> Optional[float]:
        if self.pos >= len(self.postings):
            return None
        return self.postings[self.pos].score

    def pop(self):
        if self.pos >= len(self.postings):
            return None
        posting = self.postings[self.pos]
        self.pos += 1
        return posting


class RDILSearch:
    """Top-K ELCA/SLCA search by ranked scan + index lookups."""

    def __init__(self, index: InvertedIndex):
        self.index = index
        self.ranking: RankingModel = index.ranking
        self._lookup = IndexBasedSearch(index)

    def search(self, terms: Sequence[str], k: int,
               semantics: str = ELCA) -> TopKResult:
        check_semantics(semantics)
        stats = ExecutionStats()
        terms = list(terms)
        if not terms or k <= 0:
            return TopKResult([], stats)
        lists = self.index.query_lists(terms)
        if any(len(lst) == 0 for lst in lists):
            return TopKResult([], stats)
        list_slot = {lst.term: i for i, lst in enumerate(lists)}
        caller_slot = [list_slot[t] for t in terms]

        cursors = [_ScoreCursor(lst) for lst in lists]
        produced: Set[Dewey] = set()
        buffer: List[Tuple[float, Dewey, SearchResult]] = []
        emitted: List[SearchResult] = []
        turn = 0

        while len(emitted) < k:
            cursor = self._next_cursor(cursors, turn)
            turn += 1
            if cursor is None:
                break  # a list ran dry: no unproduced result remains
            posting = cursor.pop()
            stats.tuples_scanned += 1
            candidate = self._lookup._elca_candidate(lists, posting.dewey,
                                                     stats)
            if candidate and candidate not in produced:
                produced.add(candidate)
                result = self._check_and_score(lists, candidate, semantics,
                                               caller_slot, stats)
                if result is not None:
                    heapq.heappush(buffer,
                                   (-result.score, result.node.dewey, result))
            bound = self._unseen_bound(cursors)
            while buffer and len(emitted) < k and -buffer[0][0] >= bound:
                emitted.append(heapq.heappop(buffer)[2])
                stats.results_emitted += 1
        while buffer and len(emitted) < k:
            emitted.append(heapq.heappop(buffer)[2])
            stats.results_emitted += 1
        return TopKResult(emitted, stats,
                          terminated_early=any(c.peek() is not None
                                               for c in cursors))

    # ------------------------------------------------------------------

    @staticmethod
    def _next_cursor(cursors: List[_ScoreCursor],
                     turn: int) -> Optional[_ScoreCursor]:
        """Round-robin over non-exhausted lists; None ends the scan.

        The scan stops as soon as *any* list runs dry: every unproduced
        result needs a fresh free witness in every list.
        """
        n = len(cursors)
        if any(c.peek() is None for c in cursors):
            return None
        return cursors[turn % n]

    def _unseen_bound(self, cursors: List[_ScoreCursor]) -> float:
        """Bound on unproduced results: F over per-list next scores.

        Sound for any monotone combiner: an unproduced result has an
        unpopped free witness in every list, whose damped score is at
        most that list's next raw score.
        """
        nexts = []
        for cursor in cursors:
            nxt = cursor.peek()
            if nxt is None:
                return -float("inf")
            nexts.append(nxt)
        return self.ranking.combiner.upper_bound(nexts)

    def _check_and_score(self, lists: List[PostingList], u: Dewey,
                         semantics: str, caller_slot: List[int],
                         stats: ExecutionStats) -> Optional[SearchResult]:
        """Verify the candidate against the semantics, then score it."""
        stats.candidates_checked += 1
        if semantics == SLCA:
            # u is the deepest C-node over some occurrence, but another
            # branch below u may hide a deeper C-node: probe each list's
            # occurrences under u for a deeper candidate.
            if self._has_c_descendant(lists, u, stats):
                return None
        else:
            if not self._lookup._verify_elca(lists, u, stats):
                return None
        score, by_list = self._lookup._score(lists, u,
                                             free_only=semantics == ELCA)
        witness = tuple(by_list[slot] for slot in caller_slot)
        node = self.index.tree.node_by_dewey(u)
        return SearchResult(node, len(u), score, witness)

    def _has_c_descendant(self, lists: List[PostingList], u: Dewey,
                          stats: ExecutionStats) -> bool:
        lo, hi = lists[0].descendants_range(u)
        for pos in range(lo, hi):
            w = lists[0].postings[pos].dewey
            deepest = self._lookup._elca_candidate(lists, w, stats)
            if deepest is not None and len(deepest) > len(u):
                return True
        return False


def search_topk(index: InvertedIndex, terms: Sequence[str], k: int,
                semantics: str = ELCA) -> TopKResult:
    """One-shot convenience wrapper around `RDILSearch.search`."""
    return RDILSearch(index).search(terms, k, semantics)
