"""Hybrid plan selection (paper section V-D).

Figure 10 shows the two join-based algorithms are complementary: the
top-K star join wins when the keywords are correlated (many results,
early termination), while the complete join-based evaluation wins when
results are scarce (the rank-join degenerates into a more expensive full
scan).  The deciding quantity is the per-level join cardinality.

`HybridTopKSearch` implements the hybrid the paper sketches: a score
index exists on top of the JDewey columns (both orders available), and
at *every level* a cardinality estimate picks the plan --

* estimated result count >= ``switch_factor * k`` remaining  ->  run the
  level as a top-K star join with threshold-based early emission;
* otherwise                                               ->  evaluate
  the level eagerly with the ordinary column join (cheap when few or no
  numbers match) and buffer the scored results.

Cardinality is re-estimated per level, giving the context-awareness of
section III-C: the same query may scan eagerly at the paper level and
rank-join at the conference level.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

from ..index.columnar import ColumnarIndex
from ..index.scored import ScoredPostings
from ..planner.cardinality import CardinalityEstimator
from ..planner.plans import JoinPlanner
from .base import (ELCA, SLCA, ExecutionStats, SearchResult, TopKResult,
                   check_semantics)
from .erasure import make_eraser
from .topk_join import GROUP, TopKStarJoin
from .topk_keyword import TopKKeywordSearch, _CursorInput


class HybridTopKSearch(TopKKeywordSearch):
    """Cardinality-driven mix of the complete and top-K join plans."""

    def __init__(self, index: ColumnarIndex, bound_mode: str = GROUP,
                 eraser_mode: str = "auto",
                 planner: Optional[JoinPlanner] = None,
                 estimator: Optional[CardinalityEstimator] = None,
                 switch_factor: float = 4.0):
        super().__init__(index, bound_mode, eraser_mode, planner)
        self.estimator = (estimator if estimator is not None
                          else CardinalityEstimator())
        self.switch_factor = switch_factor

    def search(self, terms: Sequence[str], k: int,
               semantics: str = ELCA) -> TopKResult:
        check_semantics(semantics)
        stats = ExecutionStats()
        terms = list(terms)
        if not terms or k <= 0:
            return TopKResult([], stats)
        postings = self.index.query_postings(terms)
        if any(len(p) == 0 for p in postings):
            return TopKResult([], stats)
        term_order = {p.term: i for i, p in enumerate(postings)}
        caller_slot = [term_order[t] for t in terms]
        ops = self._bound_ops(caller_slot)

        damping_base = self.ranking.damping.base
        scored = [ScoredPostings(p, damping_base) for p in postings]
        erasers = [make_eraser(self.eraser_mode, len(p)) for p in postings]
        start_level = min(p.max_len for p in postings)
        cross_bound = self._cross_level_bounds(scored, start_level, ops)

        buffer: list = []
        emitted: list = []
        self.plan_trace: List[str] = []

        for level in range(start_level, 0, -1):
            columns = [p.column(level) for p in postings]
            below = cross_bound[level - 2] if level > 1 else -float("inf")
            if any(len(c) == 0 for c in columns):
                if self._flush(buffer, emitted, k, below):
                    return TopKResult(emitted, stats, terminated_early=True)
                continue
            stats.levels_processed += 1
            estimate = self.estimator.estimate([c.distinct for c in columns])
            remaining = k - len(emitted)
            use_topk = estimate >= self.switch_factor * remaining
            self.plan_trace.append("topk" if use_topk else "eager")
            if use_topk:
                done = self._topk_level(postings, columns, scored, erasers,
                                        semantics, caller_slot, level, k,
                                        below, buffer, emitted, stats, ops)
                if done:
                    return TopKResult(emitted, stats, terminated_early=True)
            else:
                self._eager_level(postings, columns, erasers, semantics,
                                  caller_slot, level, buffer, stats)
            self._erase_level(columns, erasers, stats, level)
            if self._flush(buffer, emitted, k, below):
                return TopKResult(emitted, stats, terminated_early=level > 1)
        self._flush(buffer, emitted, k, -float("inf"))
        return TopKResult(emitted, stats)

    # ------------------------------------------------------------------

    def _topk_level(self, postings, columns, scored, erasers, semantics,
                    caller_slot, level, k, below, buffer, emitted,
                    stats, ops=None) -> bool:
        """Run one level as a top-K star join; True if K got emitted."""
        inputs = [
            _CursorInput(s.cursor(level, skip=e.is_erased))
            for s, e in zip(scored, erasers)
        ]
        join = TopKStarJoin(inputs, k, self.bound_mode, stats, ops)
        consumed = 0
        steps_since_attempt = 0
        while join.step():
            steps_since_attempt += 1
            if (len(join.completed) == consumed
                    and steps_since_attempt < 16):
                continue
            steps_since_attempt = 0
            for completed in join.completed[consumed:]:
                result = self._materialize(completed, level, postings,
                                           columns, erasers, semantics,
                                           caller_slot)
                if result is not None:
                    heapq.heappush(buffer,
                                   (-result.score, result.node.dewey, result))
            consumed = len(join.completed)
            bound = max(join.threshold(), below)
            while buffer and len(emitted) < k and -buffer[0][0] >= bound:
                emitted.append(heapq.heappop(buffer)[2])
                stats.results_emitted += 1
            if len(emitted) >= k:
                return True
        for completed in join.completed[consumed:]:
            result = self._materialize(completed, level, postings, columns,
                                       erasers, semantics, caller_slot)
            if result is not None:
                heapq.heappush(buffer,
                               (-result.score, result.node.dewey, result))
        return False

    def _eager_level(self, postings, columns, erasers, semantics,
                     caller_slot, level, buffer, stats) -> None:
        """Evaluate one level with the complete column join."""
        joined = self.planner.intersect_all(
            [c.distinct for c in columns], stats, level)
        damping_base = self.ranking.damping.base
        for number in joined:
            stats.candidates_checked += 1
            witness = [0.0] * len(postings)
            ok = True
            for t, column in enumerate(columns):
                a, b = column.run_of(int(number))
                ordinals = column.seq_idx[a:b]
                lo, hi = int(ordinals[0]), int(ordinals[-1]) + 1
                erased = erasers[t].erased_count(lo, hi)
                if semantics == SLCA:
                    if erased:
                        ok = False
                        break
                    free = ordinals
                else:
                    if erased >= b - a:
                        ok = False
                        break
                    free = (ordinals[erasers[t].free_mask(ordinals)]
                            if erased else ordinals)
                p = postings[t]
                damped = (p.scores[free]
                          * damping_base ** (p.lengths[free] - level))
                witness[t] = float(damped.max())
            if not ok:
                continue
            node = self.index.node_at(level, int(number))
            ordered = tuple(witness[slot] for slot in caller_slot)
            score = self.ranking.score_result(ordered)
            heapq.heappush(buffer, (-score, node.dewey,
                                    SearchResult(node, level, score,
                                                 ordered)))
