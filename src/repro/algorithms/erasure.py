"""Semantic-pruning bookkeeping: erased sequence ranges (section III-E).

When a JDewey number joins at some level, *every* sequence running
through that node is consumed: those occurrences belong to a subtree
that already contains all keywords and must not witness any higher
result.  Because a term's sequences are sorted in JDewey order, the
sequences through one node always occupy a contiguous range of ordinals,
and ranges arising at different levels are *contained or disjoint*
(paper Figure 4) -- the geometry that makes range checking a binary
search.

Two interchangeable implementations:

* `BitmapEraser`   -- a boolean array per list; simple, O(range) marks
  and counts.  The default execution path.
* `IntervalEraser` -- the paper's range-checking structure: a sorted set
  of disjoint intervals with O(log n) queries; marks exploit the
  contained-or-disjoint property to merge swallowed ranges.

Both are property-tested for equivalence and benchmarked in the
range-checking ablation.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

import numpy as np


class BitmapEraser:
    """Per-ordinal boolean erasure marks."""

    def __init__(self, size: int):
        self.size = size
        self._marks = np.zeros(size, dtype=bool)

    def mark(self, lo: int, hi: int) -> None:
        """Erase ordinals in [lo, hi)."""
        if not 0 <= lo <= hi <= self.size:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.size})")
        self._marks[lo:hi] = True

    def erased_count(self, lo: int, hi: int) -> int:
        return int(self._marks[lo:hi].sum())

    def is_erased(self, ordinal: int) -> bool:
        return bool(self._marks[ordinal])

    def free_mask(self, ordinals: np.ndarray) -> np.ndarray:
        """Boolean mask of *non*-erased entries for an ordinal array."""
        return ~self._marks[ordinals]

    @property
    def total_erased(self) -> int:
        return int(self._marks.sum())


class IntervalEraser:
    """Disjoint sorted intervals with prefix-sum counting.

    `mark` assumes the paper's contained-or-disjoint geometry: a new
    interval either contains a consecutive block of existing intervals
    (it swallows them) or is disjoint from all of them.  Overlapping
    partial ranges raise, which doubles as a structural assertion that
    the join algorithm respects the geometry.
    """

    def __init__(self, size: int):
        self.size = size
        self._starts: List[int] = []
        self._ends: List[int] = []

    def mark(self, lo: int, hi: int) -> None:
        if not 0 <= lo <= hi <= self.size:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.size})")
        if lo == hi:
            return
        left = bisect.bisect_left(self._ends, lo + 1)
        right = bisect.bisect_left(self._starts, hi)
        swallowed_starts = self._starts[left:right]
        swallowed_ends = self._ends[left:right]
        if swallowed_starts and (swallowed_starts[0] < lo
                                 or swallowed_ends[-1] > hi):
            raise ValueError(
                "partial overlap violates the contained-or-disjoint property")
        self._starts[left:right] = [lo]
        self._ends[left:right] = [hi]

    def erased_count(self, lo: int, hi: int) -> int:
        """Erased ordinals within [lo, hi) via binary search."""
        total = 0
        i = bisect.bisect_left(self._ends, lo + 1)
        while i < len(self._starts) and self._starts[i] < hi:
            total += min(self._ends[i], hi) - max(self._starts[i], lo)
            i += 1
        return total

    def is_erased(self, ordinal: int) -> bool:
        i = bisect.bisect_right(self._starts, ordinal) - 1
        return i >= 0 and ordinal < self._ends[i]

    def free_mask(self, ordinals: np.ndarray) -> np.ndarray:
        return np.fromiter((not self.is_erased(int(o)) for o in ordinals),
                           dtype=bool, count=len(ordinals))

    @property
    def total_erased(self) -> int:
        return sum(e - s for s, e in zip(self._starts, self._ends))

    @property
    def intervals(self) -> List[Tuple[int, int]]:
        return list(zip(self._starts, self._ends))


ERASER_MODES = {"bitmap": BitmapEraser, "interval": IntervalEraser}


def make_eraser(mode: str, size: int):
    """Factory for the two erasure strategies."""
    try:
        cls = ERASER_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown eraser mode {mode!r}; one of {sorted(ERASER_MODES)}")
    return cls(size)
