"""Semantic-pruning bookkeeping: erased sequence ranges (section III-E).

When a JDewey number joins at some level, *every* sequence running
through that node is consumed: those occurrences belong to a subtree
that already contains all keywords and must not witness any higher
result.  Because a term's sequences are sorted in JDewey order, the
sequences through one node always occupy a contiguous range of ordinals,
and ranges arising at different levels are *contained or disjoint*
(paper Figure 4) -- the geometry that makes range checking a binary
search.

Two interchangeable implementations:

* `BitmapEraser`   -- a boolean array per list; simple, O(range) marks
  and counts.  The default execution path.
* `IntervalEraser` -- the paper's range-checking structure: a sorted set
  of disjoint intervals with O(log n) queries; marks exploit the
  contained-or-disjoint property to merge swallowed ranges.

Both expose scalar (`mark`/`erased_count`) and bulk
(`mark_many`/`erased_counts`) APIs; the bulk entry points back the
vectorized level loop of `repro.algorithms.join_based`.  The bitmap
answers bulk counts from a cached cumulative-sum prefix array (rebuilt
lazily after marks change); the interval eraser answers them with a
vectorized binary search over its interval endpoints.

Both are property-tested for equivalence and benchmarked in the
range-checking ablation.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np


def _check_bulk_ranges(lows: np.ndarray, highs: np.ndarray,
                       size: int) -> None:
    if len(lows) != len(highs):
        raise ValueError("lows and highs must have equal length")
    if len(lows) == 0:
        return
    if int(lows.min()) < 0 or int(highs.max()) > size \
            or bool(np.any(lows > highs)):
        raise ValueError(f"bulk ranges outside [0, {size})")


class BitmapEraser:
    """Per-ordinal boolean erasure marks."""

    def __init__(self, size: int):
        self.size = size
        self._marks = np.zeros(size, dtype=bool)
        self._prefix: Optional[np.ndarray] = None

    def mark(self, lo: int, hi: int) -> None:
        """Erase ordinals in [lo, hi)."""
        if not 0 <= lo <= hi <= self.size:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.size})")
        if hi > lo:
            self._marks[lo:hi] = True
            self._prefix = None

    def mark_many(self, lows: np.ndarray, highs: np.ndarray) -> None:
        """Erase every [lows[i], highs[i]) in one validated pass.

        Sparse batches (few ranges relative to the bitmap) use direct
        slice assignment; dense batches switch to a difference array --
        +1 at each low, -1 at each high, cumulative sum marks every
        covered ordinal -- which is O(size + n) regardless of how the
        ranges overlap.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        if len(lows) == 0:
            return
        if len(lows) * 32 < self.size:
            marks = self._marks
            for lo, hi in zip(lows.tolist(), highs.tolist()):
                marks[lo:hi] = True
        else:
            diff = np.zeros(self.size + 1, dtype=np.int64)
            np.add.at(diff, lows, 1)
            np.add.at(diff, highs, -1)
            self._marks |= np.cumsum(diff[:-1]) > 0
        self._prefix = None

    def erased_count(self, lo: int, hi: int) -> int:
        return int(self._marks[lo:hi].sum())

    def erased_counts(self, lows: np.ndarray, highs: np.ndarray
                      ) -> np.ndarray:
        """Erased ordinals within each [lows[i], highs[i]), in bulk."""
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        if self._prefix is None:
            self._prefix = np.concatenate(
                ([0], np.cumsum(self._marks, dtype=np.int64)))
        return self._prefix[highs] - self._prefix[lows]

    def is_erased(self, ordinal: int) -> bool:
        return bool(self._marks[ordinal])

    def free_mask(self, ordinals: np.ndarray) -> np.ndarray:
        """Boolean mask of *non*-erased entries for an ordinal array."""
        return ~self._marks[ordinals]

    @property
    def total_erased(self) -> int:
        return int(self._marks.sum())


class IntervalEraser:
    """Disjoint sorted intervals with prefix-sum counting.

    `mark` assumes the paper's contained-or-disjoint geometry: a new
    interval either contains a consecutive block of existing intervals
    (it swallows them) or is disjoint from all of them.  Overlapping
    partial ranges raise, which doubles as a structural assertion that
    the join algorithm respects the geometry.
    """

    def __init__(self, size: int):
        self.size = size
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray,
                                     np.ndarray]] = None

    def mark(self, lo: int, hi: int) -> None:
        if not 0 <= lo <= hi <= self.size:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.size})")
        if lo == hi:
            return
        left = bisect.bisect_left(self._ends, lo + 1)
        right = bisect.bisect_left(self._starts, hi)
        swallowed_starts = self._starts[left:right]
        swallowed_ends = self._ends[left:right]
        if swallowed_starts and (swallowed_starts[0] < lo
                                 or swallowed_ends[-1] > hi):
            raise ValueError(
                "partial overlap violates the contained-or-disjoint property")
        self._starts[left:right] = [lo]
        self._ends[left:right] = [hi]
        self._arrays = None

    def mark_many(self, lows: np.ndarray, highs: np.ndarray) -> None:
        """Erase every [lows[i], highs[i]).

        Interval maintenance is inherently sequential (each mark may
        swallow earlier intervals), so this is a validated loop over
        `mark`; the bulk win for this eraser is on the query side.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        for lo, hi in zip(lows, highs):
            self.mark(int(lo), int(hi))

    def _as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(starts, ends, prefix) views; prefix[i] is the total erased
        length of intervals before i (cached until the next mark)."""
        if self._arrays is None:
            starts = np.asarray(self._starts, dtype=np.int64)
            ends = np.asarray(self._ends, dtype=np.int64)
            prefix = np.concatenate(
                ([0], np.cumsum(ends - starts, dtype=np.int64)))
            self._arrays = (starts, ends, prefix)
        return self._arrays

    def _coverage(self, points: np.ndarray) -> np.ndarray:
        """Erased ordinals strictly below each point (vectorized)."""
        starts, ends, prefix = self._as_arrays()
        idx = np.searchsorted(starts, points, side="right") - 1
        clamped = np.maximum(idx, 0)
        inside = np.clip(points - starts[clamped], 0,
                         ends[clamped] - starts[clamped])
        return np.where(idx < 0, 0, prefix[clamped] + inside)

    def erased_count(self, lo: int, hi: int) -> int:
        """Erased ordinals within [lo, hi) via binary search."""
        total = 0
        i = bisect.bisect_left(self._ends, lo + 1)
        while i < len(self._starts) and self._starts[i] < hi:
            total += min(self._ends[i], hi) - max(self._starts[i], lo)
            i += 1
        return total

    def erased_counts(self, lows: np.ndarray, highs: np.ndarray
                      ) -> np.ndarray:
        """Erased ordinals within each [lows[i], highs[i]), in bulk.

        Computed as a difference of the cumulative coverage function,
        each side one vectorized binary search over interval endpoints.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        if not self._starts or len(lows) == 0:
            return np.zeros(len(lows), dtype=np.int64)
        return self._coverage(highs) - self._coverage(lows)

    def is_erased(self, ordinal: int) -> bool:
        i = bisect.bisect_right(self._starts, ordinal) - 1
        return i >= 0 and ordinal < self._ends[i]

    def free_mask(self, ordinals: np.ndarray) -> np.ndarray:
        ordinals = np.asarray(ordinals, dtype=np.int64)
        if not self._starts or len(ordinals) == 0:
            return np.ones(len(ordinals), dtype=bool)
        starts, ends, _prefix = self._as_arrays()
        idx = np.searchsorted(starts, ordinals, side="right") - 1
        clamped = np.maximum(idx, 0)
        erased = (idx >= 0) & (ordinals < ends[clamped])
        return ~erased

    @property
    def total_erased(self) -> int:
        return sum(e - s for s, e in zip(self._starts, self._ends))

    @property
    def intervals(self) -> List[Tuple[int, int]]:
        return list(zip(self._starts, self._ends))


ERASER_MODES = {"bitmap": BitmapEraser, "interval": IntervalEraser}


def make_eraser(mode: str, size: int):
    """Factory for the two erasure strategies."""
    try:
        cls = ERASER_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown eraser mode {mode!r}; one of {sorted(ERASER_MODES)}")
    return cls(size)
