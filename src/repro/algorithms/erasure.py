"""Semantic-pruning bookkeeping: erased sequence ranges (section III-E).

When a JDewey number joins at some level, *every* sequence running
through that node is consumed: those occurrences belong to a subtree
that already contains all keywords and must not witness any higher
result.  Because a term's sequences are sorted in JDewey order, the
sequences through one node always occupy a contiguous range of ordinals,
and ranges arising at different levels are *contained or disjoint*
(paper Figure 4) -- the geometry that makes range checking a binary
search.

Two interchangeable implementations:

* `BitmapEraser`   -- a boolean array per list; simple, O(range) marks
  and counts.  The default execution path.
* `IntervalEraser` -- the paper's range-checking structure: a sorted set
  of disjoint intervals with O(log n) queries; marks exploit the
  contained-or-disjoint property to merge swallowed ranges.

Both expose scalar (`mark`/`erased_count`) and bulk
(`mark_many`/`erased_counts`) APIs; the bulk entry points back the
vectorized level loop of `repro.algorithms.join_based`.  The bitmap
answers bulk counts from a cached cumulative-sum prefix array (rebuilt
lazily after marks change); the interval eraser answers them with a
vectorized binary search over its interval endpoints.

Both are property-tested for equivalence and benchmarked in the
range-checking ablation.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np


def _check_bulk_ranges(lows: np.ndarray, highs: np.ndarray,
                       size: int) -> None:
    if len(lows) != len(highs):
        raise ValueError("lows and highs must have equal length")
    if len(lows) == 0:
        return
    if int(lows.min()) < 0 or int(highs.max()) > size \
            or bool(np.any(lows > highs)):
        raise ValueError(f"bulk ranges outside [0, {size})")


class BitmapEraser:
    """Per-ordinal boolean erasure marks."""

    def __init__(self, size: int):
        self.size = size
        self._marks = np.zeros(size, dtype=bool)
        self._prefix: Optional[np.ndarray] = None

    def mark(self, lo: int, hi: int) -> None:
        """Erase ordinals in [lo, hi)."""
        if not 0 <= lo <= hi <= self.size:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.size})")
        if hi > lo:
            self._marks[lo:hi] = True
            self._prefix = None

    def mark_many(self, lows: np.ndarray, highs: np.ndarray) -> None:
        """Erase every [lows[i], highs[i]) in one validated pass.

        Sparse batches (few ranges relative to the bitmap) use direct
        slice assignment; dense batches switch to a difference array --
        +1 at each low, -1 at each high, cumulative sum marks every
        covered ordinal -- which is O(size + n) regardless of how the
        ranges overlap.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        if len(lows) == 0:
            return
        if len(lows) * 32 < self.size:
            marks = self._marks
            for lo, hi in zip(lows.tolist(), highs.tolist()):
                marks[lo:hi] = True
        else:
            diff = np.zeros(self.size + 1, dtype=np.int64)
            np.add.at(diff, lows, 1)
            np.add.at(diff, highs, -1)
            self._marks |= np.cumsum(diff[:-1]) > 0
        self._prefix = None

    def erased_count(self, lo: int, hi: int) -> int:
        return int(self._marks[lo:hi].sum())

    def erased_counts(self, lows: np.ndarray, highs: np.ndarray
                      ) -> np.ndarray:
        """Erased ordinals within each [lows[i], highs[i]), in bulk."""
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        if self._prefix is None:
            self._prefix = np.concatenate(
                ([0], np.cumsum(self._marks, dtype=np.int64)))
        return self._prefix[highs] - self._prefix[lows]

    def is_erased(self, ordinal: int) -> bool:
        return bool(self._marks[ordinal])

    def free_mask(self, ordinals: np.ndarray) -> np.ndarray:
        """Boolean mask of *non*-erased entries for an ordinal array."""
        return ~self._marks[ordinals]

    @property
    def total_erased(self) -> int:
        return int(self._marks.sum())


class IntervalEraser:
    """Disjoint sorted intervals with prefix-sum counting.

    `mark` assumes the paper's contained-or-disjoint geometry: a new
    interval either contains a consecutive block of existing intervals
    (it swallows them) or is disjoint from all of them.  Overlapping
    partial ranges raise, which doubles as a structural assertion that
    the join algorithm respects the geometry.
    """

    def __init__(self, size: int):
        self.size = size
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray,
                                     np.ndarray]] = None

    def mark(self, lo: int, hi: int) -> None:
        if not 0 <= lo <= hi <= self.size:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.size})")
        if lo == hi:
            return
        left = bisect.bisect_left(self._ends, lo + 1)
        right = bisect.bisect_left(self._starts, hi)
        swallowed_starts = self._starts[left:right]
        swallowed_ends = self._ends[left:right]
        if swallowed_starts and (swallowed_starts[0] < lo
                                 or swallowed_ends[-1] > hi):
            raise ValueError(
                "partial overlap violates the contained-or-disjoint property")
        self._starts[left:right] = [lo]
        self._ends[left:right] = [hi]
        self._arrays = None

    def mark_many(self, lows: np.ndarray, highs: np.ndarray) -> None:
        """Erase every [lows[i], highs[i]).

        Interval maintenance is inherently sequential (each mark may
        swallow earlier intervals), so this is a validated loop over
        `mark`; the bulk win for this eraser is on the query side.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        for lo, hi in zip(lows, highs):
            self.mark(int(lo), int(hi))

    def _as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(starts, ends, prefix) views; prefix[i] is the total erased
        length of intervals before i (cached until the next mark)."""
        if self._arrays is None:
            starts = np.asarray(self._starts, dtype=np.int64)
            ends = np.asarray(self._ends, dtype=np.int64)
            prefix = np.concatenate(
                ([0], np.cumsum(ends - starts, dtype=np.int64)))
            self._arrays = (starts, ends, prefix)
        return self._arrays

    def _coverage(self, points: np.ndarray) -> np.ndarray:
        """Erased ordinals strictly below each point (vectorized)."""
        starts, ends, prefix = self._as_arrays()
        idx = np.searchsorted(starts, points, side="right") - 1
        clamped = np.maximum(idx, 0)
        inside = np.clip(points - starts[clamped], 0,
                         ends[clamped] - starts[clamped])
        return np.where(idx < 0, 0, prefix[clamped] + inside)

    def erased_count(self, lo: int, hi: int) -> int:
        """Erased ordinals within [lo, hi) via binary search."""
        total = 0
        i = bisect.bisect_left(self._ends, lo + 1)
        while i < len(self._starts) and self._starts[i] < hi:
            total += min(self._ends[i], hi) - max(self._starts[i], lo)
            i += 1
        return total

    def erased_counts(self, lows: np.ndarray, highs: np.ndarray
                      ) -> np.ndarray:
        """Erased ordinals within each [lows[i], highs[i]), in bulk.

        Computed as a difference of the cumulative coverage function,
        each side one vectorized binary search over interval endpoints.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        if not self._starts or len(lows) == 0:
            return np.zeros(len(lows), dtype=np.int64)
        return self._coverage(highs) - self._coverage(lows)

    def is_erased(self, ordinal: int) -> bool:
        i = bisect.bisect_right(self._starts, ordinal) - 1
        return i >= 0 and ordinal < self._ends[i]

    def free_mask(self, ordinals: np.ndarray) -> np.ndarray:
        ordinals = np.asarray(ordinals, dtype=np.int64)
        if not self._starts or len(ordinals) == 0:
            return np.ones(len(ordinals), dtype=bool)
        starts, ends, _prefix = self._as_arrays()
        idx = np.searchsorted(starts, ordinals, side="right") - 1
        clamped = np.maximum(idx, 0)
        erased = (idx >= 0) & (ordinals < ends[clamped])
        return ~erased

    @property
    def total_erased(self) -> int:
        return sum(e - s for s, e in zip(self._starts, self._ends))

    @property
    def intervals(self) -> List[Tuple[int, int]]:
        return list(zip(self._starts, self._ends))


# ---------------------------------------------------------------------------
# Roaring-style eraser (format v4)
# ---------------------------------------------------------------------------

_CHUNK_BITS = 16
_CHUNK = 1 << _CHUNK_BITS
#: An array container past this cardinality promotes to a bitset
#: (the classic roaring threshold: 4096 * 2 bytes == one bitset word
#: budget's break-even).
_ARRAY_MAX = 4096
#: A run container past this many runs promotes to a bitset.
_RUN_MAX = 2048


def _runs_from_values(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique ordinals -> disjoint [start, end) runs."""
    if values.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    breaks = np.flatnonzero(np.diff(values) > 1)
    starts = values[np.concatenate(([0], breaks + 1))]
    ends = values[np.concatenate((breaks, [values.size - 1]))] + 1
    return starts.astype(np.int64), ends.astype(np.int64)


def _runs_from_mask(mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Boolean mask -> disjoint [start, end) runs."""
    edges = np.diff(np.concatenate(([0], mask.astype(np.int8), [0])))
    return (np.flatnonzero(edges == 1).astype(np.int64),
            np.flatnonzero(edges == -1).astype(np.int64))


class _ArrayChunk:
    """Sparse chunk: sorted unique ordinals (chunk-relative)."""

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray):
        self.values = values

    def to_runs(self) -> Tuple[np.ndarray, np.ndarray]:
        return _runs_from_values(self.values)

    def cardinality(self) -> int:
        return int(self.values.size)


class _RunChunk:
    """Mid-density chunk: disjoint sorted [start, end) runs."""

    __slots__ = ("starts", "ends")

    def __init__(self, starts: np.ndarray, ends: np.ndarray):
        self.starts = starts
        self.ends = ends

    def to_runs(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.starts, self.ends

    def cardinality(self) -> int:
        return int((self.ends - self.starts).sum())


class _BitsetChunk:
    """Dense chunk: 1024 uint64 words, one bit per ordinal."""

    __slots__ = ("words",)

    def __init__(self, words: Optional[np.ndarray] = None):
        self.words = words if words is not None \
            else np.zeros(_CHUNK // 64, dtype=np.uint64)

    def set_range(self, lo: int, hi: int) -> None:
        """Set bits [lo, hi) with word-level masks (little-endian bit
        order: ordinal o lives in word o >> 6, bit o & 63)."""
        if hi <= lo:
            return
        first, last = lo >> 6, (hi - 1) >> 6
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        head = ones << np.uint64(lo & 63)
        tail = ones >> np.uint64(63 - ((hi - 1) & 63))
        if first == last:
            self.words[first] |= head & tail
        else:
            self.words[first] |= head
            self.words[last] |= tail
            self.words[first + 1: last] = ones

    def to_mask(self) -> np.ndarray:
        return np.unpackbits(self.words.view(np.uint8),
                             bitorder="little").astype(bool)

    def to_runs(self) -> Tuple[np.ndarray, np.ndarray]:
        return _runs_from_mask(self.to_mask())

    def cardinality(self) -> int:
        # popcount via the 8-bit lookup of unpackbits' byte view
        return int(np.unpackbits(self.words.view(np.uint8)).sum())


def _mask_to_bitset(mask: np.ndarray) -> _BitsetChunk:
    words = np.packbits(mask, bitorder="little").view(np.uint64).copy()
    return _BitsetChunk(words)


def _chunk_to_bitset(chunk) -> _BitsetChunk:
    if isinstance(chunk, _BitsetChunk):
        return chunk
    mask = np.zeros(_CHUNK, dtype=bool)
    if isinstance(chunk, _ArrayChunk):
        mask[chunk.values] = True
    else:
        diff = np.zeros(_CHUNK + 1, dtype=np.int8)
        diff[chunk.starts] = 1
        np.add.at(diff, chunk.ends, -1)
        mask = np.cumsum(diff[:-1]) > 0
    return _mask_to_bitset(mask)


def _merge_run(starts: np.ndarray, ends: np.ndarray,
               lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
    """Union [lo, hi) into disjoint sorted runs (general overlap)."""
    left = int(np.searchsorted(ends, lo, side="left"))
    right = int(np.searchsorted(starts, hi, side="right"))
    if left < right:
        lo = min(lo, int(starts[left]))
        hi = max(hi, int(ends[right - 1]))
    return (np.concatenate((starts[:left], [lo], starts[right:])),
            np.concatenate((ends[:left], [hi], ends[right:])))


def _union_runs(s1: np.ndarray, e1: np.ndarray,
                s2: np.ndarray, e2: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Union two run sets into disjoint sorted runs: sort by start,
    then a running-maximum sweep closes every overlap in one pass."""
    s = np.concatenate((s1, s2))
    e = np.concatenate((e1, e2))
    order = np.argsort(s, kind="stable")
    s, e = s[order], e[order]
    reach = np.maximum.accumulate(e)
    new_run = np.concatenate(([True], s[1:] > reach[:-1]))
    return s[new_run], np.maximum.reduceat(e, np.flatnonzero(new_run))


class RoaringEraser:
    """Roaring-style erasure set: the ordinal space splits into 2^16
    chunks, each held as whichever container is cheapest for its
    density -- a sorted ordinal array (sparse), a run list (clustered,
    the usual shape for subtree ranges), or a packed 64-bit bitset
    (dense), with the classic promotion thresholds.

    Unlike `IntervalEraser` it accepts arbitrary overlapping marks
    (general union), and unlike `BitmapEraser` its storage and bulk
    mark cost scale with the *marked* area, not the list size.  Bulk
    queries flatten the containers once into global disjoint runs
    (cached until the next mark) and answer `erased_counts` /
    `free_mask` with the same two-sided vectorized binary search the
    interval eraser uses.
    """

    def __init__(self, size: int):
        self.size = size
        self._chunks: dict = {}
        self._flat: Optional[Tuple[np.ndarray, np.ndarray,
                                   np.ndarray]] = None

    # -- marking ----------------------------------------------------------

    def mark(self, lo: int, hi: int) -> None:
        """Erase ordinals in [lo, hi); overlapping marks union."""
        if not 0 <= lo <= hi <= self.size:
            raise ValueError(f"range [{lo}, {hi}) outside [0, {self.size})")
        if hi > lo:
            self._add_run(lo, hi)
            self._flat = None

    def mark_many(self, lows: np.ndarray, highs: np.ndarray) -> None:
        """Erase every [lows[i], highs[i]) in one pass.

        The batch is first normalised to disjoint runs with a sort +
        running-maximum sweep (pure numpy), so heavily overlapping
        batches collapse before any container is touched.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        keep = highs > lows
        lows, highs = lows[keep], highs[keep]
        if lows.size == 0:
            return
        empty = np.empty(0, dtype=np.int64)
        run_lo, run_hi = _union_runs(lows, highs, empty, empty)
        # Split the merged runs at chunk boundaries; pieces stay sorted
        # by chunk, so each affected container rebuilds exactly once.
        first = run_lo >> _CHUNK_BITS
        last = (run_hi - 1) >> _CHUNK_BITS
        counts = last - first + 1
        idx = np.repeat(np.arange(run_lo.size), counts)
        offsets = np.arange(idx.size) \
            - np.repeat(np.cumsum(counts) - counts, counts)
        ci = first[idx] + offsets
        base = ci << _CHUNK_BITS
        piece_lo = np.maximum(run_lo[idx], base) - base
        piece_hi = np.minimum(run_hi[idx], base + _CHUNK) - base
        uniq, chunk_starts = np.unique(ci, return_index=True)
        bounds = np.append(chunk_starts, ci.size)
        for k, c in enumerate(uniq.tolist()):
            self._apply_chunk_runs(int(c),
                                   piece_lo[bounds[k]:bounds[k + 1]],
                                   piece_hi[bounds[k]:bounds[k + 1]])
        self._flat = None

    def _apply_chunk_runs(self, ci: int, piece_lo: np.ndarray,
                          piece_hi: np.ndarray) -> None:
        """Union a sorted batch of disjoint runs into one chunk."""
        chunk = self._chunks.get(ci)
        if isinstance(chunk, _BitsetChunk):
            if piece_lo.size <= 8:
                for lo, hi in zip(piece_lo.tolist(), piece_hi.tolist()):
                    chunk.set_range(int(lo), int(hi))
            else:
                diff = np.zeros(_CHUNK + 1, dtype=np.int32)
                np.add.at(diff, piece_lo, 1)
                np.add.at(diff, piece_hi, -1)
                mask = np.cumsum(diff[:-1]) > 0
                chunk.words |= np.packbits(
                    mask, bitorder="little").view(np.uint64)
            return
        if chunk is None:
            s_old = e_old = np.empty(0, dtype=np.int64)
        else:
            s_old, e_old = chunk.to_runs()
        s, e = _union_runs(s_old, e_old, piece_lo, piece_hi)
        if s.size > _RUN_MAX:
            self._chunks[ci] = _chunk_to_bitset(_RunChunk(s, e))
        else:
            self._chunks[ci] = _RunChunk(s, e)

    def _add_run(self, lo: int, hi: int) -> None:
        """Union [lo, hi) into the chunk containers it crosses."""
        first, last = lo >> _CHUNK_BITS, (hi - 1) >> _CHUNK_BITS
        for ci in range(first, last + 1):
            base = ci << _CHUNK_BITS
            rel_lo = max(lo - base, 0)
            rel_hi = min(hi - base, _CHUNK)
            self._add_chunk_run(ci, rel_lo, rel_hi)

    def _add_chunk_run(self, ci: int, lo: int, hi: int) -> None:
        chunk = self._chunks.get(ci)
        if chunk is None:
            if hi - lo == 1:
                self._chunks[ci] = _ArrayChunk(
                    np.asarray([lo], dtype=np.int64))
            else:
                self._chunks[ci] = _RunChunk(
                    np.asarray([lo], dtype=np.int64),
                    np.asarray([hi], dtype=np.int64))
            return
        if isinstance(chunk, _BitsetChunk):
            chunk.set_range(lo, hi)
            return
        if isinstance(chunk, _ArrayChunk) and hi - lo == 1:
            pos = int(np.searchsorted(chunk.values, lo))
            if pos < chunk.values.size and chunk.values[pos] == lo:
                return
            chunk.values = np.insert(chunk.values, pos, lo)
            if chunk.values.size > _ARRAY_MAX:
                self._chunks[ci] = _chunk_to_bitset(chunk)
            return
        if isinstance(chunk, _ArrayChunk):
            starts, ends = chunk.to_runs()
        else:
            starts, ends = chunk.starts, chunk.ends
        starts, ends = _merge_run(starts, ends, lo, hi)
        if starts.size > _RUN_MAX:
            self._chunks[ci] = _chunk_to_bitset(
                _RunChunk(starts, ends))
        else:
            self._chunks[ci] = _RunChunk(starts, ends)

    # -- querying ---------------------------------------------------------

    def _flatten(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Global disjoint sorted runs + erased-length prefix sums."""
        if self._flat is None:
            all_starts: List[np.ndarray] = []
            all_ends: List[np.ndarray] = []
            for ci in sorted(self._chunks):
                starts, ends = self._chunks[ci].to_runs()
                base = np.int64(ci << _CHUNK_BITS)
                all_starts.append(starts + base)
                all_ends.append(ends + base)
            if all_starts:
                starts = np.concatenate(all_starts)
                ends = np.concatenate(all_ends)
                # adjacent chunks can abut; coverage math tolerates
                # touching runs, so no re-merge is needed
            else:
                starts = np.empty(0, dtype=np.int64)
                ends = np.empty(0, dtype=np.int64)
            prefix = np.concatenate(
                ([0], np.cumsum(ends - starts, dtype=np.int64)))
            self._flat = (starts, ends, prefix)
        return self._flat

    def _coverage(self, points: np.ndarray) -> np.ndarray:
        """Erased ordinals strictly below each point (vectorized)."""
        starts, ends, prefix = self._flatten()
        idx = np.searchsorted(starts, points, side="right") - 1
        clamped = np.maximum(idx, 0)
        inside = np.clip(points - starts[clamped], 0,
                         ends[clamped] - starts[clamped])
        return np.where(idx < 0, 0, prefix[clamped] + inside)

    def erased_count(self, lo: int, hi: int) -> int:
        counts = self.erased_counts(np.asarray([lo], dtype=np.int64),
                                    np.asarray([hi], dtype=np.int64))
        return int(counts[0])

    def erased_counts(self, lows: np.ndarray, highs: np.ndarray
                      ) -> np.ndarray:
        """Erased ordinals within each [lows[i], highs[i]), in bulk."""
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        _check_bulk_ranges(lows, highs, self.size)
        starts, _ends, _prefix = self._flatten()
        if starts.size == 0 or len(lows) == 0:
            return np.zeros(len(lows), dtype=np.int64)
        return self._coverage(highs) - self._coverage(lows)

    def is_erased(self, ordinal: int) -> bool:
        starts, ends, _prefix = self._flatten()
        i = int(np.searchsorted(starts, ordinal, side="right")) - 1
        return i >= 0 and ordinal < int(ends[i])

    def free_mask(self, ordinals: np.ndarray) -> np.ndarray:
        """Boolean mask of *non*-erased entries for an ordinal array."""
        ordinals = np.asarray(ordinals, dtype=np.int64)
        starts, ends, _prefix = self._flatten()
        if starts.size == 0 or len(ordinals) == 0:
            return np.ones(len(ordinals), dtype=bool)
        idx = np.searchsorted(starts, ordinals, side="right") - 1
        clamped = np.maximum(idx, 0)
        erased = (idx >= 0) & (ordinals < ends[clamped])
        return ~erased

    @property
    def total_erased(self) -> int:
        _starts, _ends, prefix = self._flatten()
        return int(prefix[-1])

    @property
    def runs(self) -> List[Tuple[int, int]]:
        """Global disjoint [start, end) runs (diagnostics/tests)."""
        starts, ends, _prefix = self._flatten()
        return list(zip(starts.tolist(), ends.tolist()))

    @property
    def container_kinds(self) -> dict:
        """{kind: count} over live chunk containers (diagnostics)."""
        kinds = {"array": 0, "run": 0, "bitset": 0}
        for chunk in self._chunks.values():
            if isinstance(chunk, _ArrayChunk):
                kinds["array"] += 1
            elif isinstance(chunk, _RunChunk):
                kinds["run"] += 1
            else:
                kinds["bitset"] += 1
        return kinds


def _auto_eraser(size: int):
    """Size-adaptive default: a dense bitmap while the domain fits one
    roaring chunk (a 64 KiB bool array is cheaper than any container
    bookkeeping), roaring containers above that -- where the chunked
    array/run/bitset representation wins on memory and bulk ops."""
    if size <= _CHUNK:
        return BitmapEraser(size)
    return RoaringEraser(size)


ERASER_MODES = {"bitmap": BitmapEraser, "interval": IntervalEraser,
                "roaring": RoaringEraser, "auto": _auto_eraser}


def make_eraser(mode: str, size: int):
    """Factory for the erasure strategies (``auto`` picks by size)."""
    try:
        cls = ERASER_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown eraser mode {mode!r}; one of {sorted(ERASER_MODES)}")
    return cls(size)
