"""Index-based baseline (Xu & Papakonstantinou [6], [8]).

Drives the evaluation from the *shortest* posting list: for each
occurrence ``v`` there, binary searches locate the closest occurrences
of every other keyword (the ``lm``/``rm`` lookups), which yield the
deepest node containing ``v`` and all keywords -- the candidate
``elca_can(v)``.

* **SLCA** (Indexed Lookup Eager): the SLCA set is exactly the candidate
  set minus candidates that are ancestors of other candidates
  [Xu & Papakonstantinou 2005, Thm. 1].
* **ELCA** (Indexed Stack flavour): every ELCA equals ``elca_can(v)``
  for one of its free shortest-list witnesses, so the candidate set is a
  superset; each distinct candidate is then verified keyword by keyword
  by hopping over blocked C-subtrees (each hop is one binary search,
  mirroring the child-interval walk of the Indexed Stack algorithm).

Complexity is O(d * k * |L1| * log|L|) plus the verification hops --
excellent when the shortest list is tiny, degrading as it grows, which
is precisely the crossover Figure 9 measures.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from ..index.inverted import InvertedIndex, PostingList
from ..scoring.ranking import RankingModel
from ..xmltree.dewey import (Dewey, common_prefix, is_prefix,
                             subtree_upper_bound)
from .base import (ELCA, SLCA, ExecutionStats, SearchResult, check_semantics,
                   sort_by_document_order)


class IndexBasedSearch:
    """Complete ELCA/SLCA evaluation via shortest-list-driven lookups."""

    def __init__(self, index: InvertedIndex):
        self.index = index
        self.ranking: RankingModel = index.ranking

    # ------------------------------------------------------------------
    # lookup primitives
    # ------------------------------------------------------------------

    def _deepest_match(self, plist: PostingList, v: Dewey,
                       stats: ExecutionStats) -> Optional[Dewey]:
        """LCA of `v` with its closest occurrence in `plist` (the deeper
        of lca(v, lm) and lca(v, rm))."""
        stats.lookups += 1
        left, right = plist.neighbours(v)
        best: Optional[Dewey] = None
        for posting in (left, right):
            if posting is None:
                continue
            anc = common_prefix(v, posting.dewey)
            if best is None or len(anc) > len(best):
                best = anc
        return best

    def _elca_candidate(self, lists: List[PostingList], v: Dewey,
                        stats: ExecutionStats) -> Optional[Dewey]:
        """Deepest node containing `v` and every keyword.

        The per-keyword deepest containers are all ancestors-or-self of
        `v`, hence totally ordered; the shallowest of them is the answer.
        Every list is probed: `v` may come from any of them (candidate
        generation probes the shortest list, verification probes all),
        and when `v` belongs to the probed list the lookup returns `v`
        itself, adding no constraint.
        """
        candidate: Optional[Dewey] = v
        for plist in lists:
            match = self._deepest_match(plist, v, stats)
            if match is None:
                return None
            if candidate is None or len(match) < len(candidate):
                candidate = match
        return candidate

    # ------------------------------------------------------------------
    # ELCA verification: hop over blocked C-subtrees
    # ------------------------------------------------------------------

    def _has_free_witness(self, lists: List[PostingList], plist: PostingList,
                          u: Dewey, stats: ExecutionStats) -> bool:
        """Does `plist` hold an occurrence under `u` with no C-node
        strictly between?  Blocked subtrees are skipped wholesale: each
        failed probe reveals the blocking C-node, and the walk resumes
        past its subtree."""
        lo, hi = plist.descendants_range(u)
        deweys = plist.deweys
        pos = lo
        while pos < hi:
            w = deweys[pos]
            blocker = self._elca_candidate(lists, w, stats)
            if blocker is None:
                return False
            if len(blocker) <= len(u):
                # No C-node below u over w; u itself contains everything.
                return True
            # `blocker` is a C-node strictly below u: skip its subtree.
            pos = bisect.bisect_left(deweys, subtree_upper_bound(blocker),
                                     lo, hi)
            stats.lookups += 1
        return False

    def _verify_elca(self, lists: List[PostingList], u: Dewey,
                     stats: ExecutionStats) -> bool:
        stats.candidates_checked += 1
        return all(self._has_free_witness(lists, plist, u, stats)
                   for plist in lists)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def _score(self, lists: List[PostingList], u: Dewey,
               free_only: bool) -> Tuple[float, Tuple[float, ...]]:
        """Exact result score: best damped free witness per keyword."""
        damping = self.ranking.damping
        witness: List[float] = []
        for plist in lists:
            lo, hi = plist.descendants_range(u)
            best = 0.0
            pos = lo
            deweys = plist.deweys
            while pos < hi:
                posting = plist.postings[pos]
                if free_only:
                    blocker = self._blocking_c_node(lists, posting.dewey, u)
                    if blocker is not None:
                        pos = bisect.bisect_left(
                            deweys, subtree_upper_bound(blocker), lo, hi)
                        continue
                damped = posting.score * damping(posting.level - len(u))
                if damped > best:
                    best = damped
                pos += 1
            witness.append(best)
        return self.ranking.score_result(witness), tuple(witness)

    def _blocking_c_node(self, lists: List[PostingList], w: Dewey,
                         u: Dewey) -> Optional[Dewey]:
        """The deepest C-node strictly between `u` and `w`, if any."""
        throwaway = ExecutionStats()
        blocker = self._elca_candidate(lists, w, throwaway)
        if blocker is not None and len(blocker) > len(u):
            return blocker
        return None

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def evaluate(self, terms: Sequence[str], semantics: str = ELCA,
                 with_scores: bool = True
                 ) -> Tuple[List[SearchResult], ExecutionStats]:
        check_semantics(semantics)
        stats = ExecutionStats()
        terms = list(terms)
        if not terms:
            return [], stats
        lists = self.index.query_lists(terms)
        if any(len(lst) == 0 for lst in lists):
            return [], stats
        # Witness scores are reported in the caller's term order even
        # though execution uses the shortest-first list order.
        list_slot = {lst.term: i for i, lst in enumerate(lists)}
        caller_slot = [list_slot[t] for t in terms]

        candidates: Dict[Dewey, None] = {}
        for posting in lists[0].postings:
            stats.tuples_scanned += 1
            candidate = self._elca_candidate(lists, posting.dewey, stats)
            if candidate:
                candidates.setdefault(candidate, None)

        ordered = sorted(candidates)
        accepted: List[Dewey] = []
        if semantics == SLCA:
            # A candidate is an SLCA unless its immediate successor in
            # Dewey order is a descendant (descendants are contiguous).
            for i, u in enumerate(ordered):
                stats.candidates_checked += 1
                if i + 1 < len(ordered) and is_prefix(u, ordered[i + 1]):
                    continue
                accepted.append(u)
        else:
            accepted = [u for u in ordered
                        if self._verify_elca(lists, u, stats)]

        results: List[SearchResult] = []
        free_only = semantics == ELCA
        for u in accepted:
            node = self.index.tree.node_by_dewey(u)
            if with_scores:
                score, by_list = self._score(lists, u, free_only)
                witness = tuple(by_list[slot] for slot in caller_slot)
            else:
                score, witness = 0.0, ()
            results.append(SearchResult(node, len(u), score, witness))
            stats.results_emitted += 1
        return sort_by_document_order(results), stats


def search(index: InvertedIndex, terms: Sequence[str],
           semantics: str = ELCA) -> List[SearchResult]:
    """One-shot convenience wrapper around `IndexBasedSearch.evaluate`."""
    results, _stats = IndexBasedSearch(index).evaluate(terms, semantics)
    return results
