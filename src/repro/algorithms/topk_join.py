"""Top-K star join (paper section IV-B) and the classic rank-join bound.

The operator consumes k ranked inputs (score-descending streams of
``(id, score)`` tuples) joined on id -- the star pattern
``R1.id = R2.id = ... = Rk.id``.  Tuples accumulate in a hash bucket;
an id seen in all k inputs becomes a *completed* result whose score sums
the per-input scores (first occurrence per input wins, which is the max
because streams descend).

Two thresholds for results not yet completed:

* ``classic`` -- the HRJN/TA bound: ``max_i (s^i + sum_{j != i} s_m^j)``
  with ``s^i`` the next unseen score of input i and ``s_m^j`` the very
  first (maximum) score of input j.
* ``group``   -- the paper's tighter star-join bound: bucket tuples are
  grouped by the subset P of inputs that have seen them;
  ``max(sum_i s^i, max_P (ms(G_P) + sum_{j not in P} s^j))`` where
  ``ms(G_P)`` is the best current partial sum in the group.  The first
  term covers ids never seen anywhere; the paper proves the group term
  dominates it whenever the bucket is non-empty, but keeping it makes
  the empty-bucket case explicit.

Exhausted inputs drop out of the bound naturally: an id that has not
been seen in an exhausted input can never complete, so its partial is
dead and case 1 is impossible.

The cursor policy follows the paper: round-robin until K results have
been *generated*, then always advance the input with the largest next
score ``s^i``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from .base import ExecutionStats

CLASSIC = "classic"
GROUP = "group"
BOUND_MODES = (CLASSIC, GROUP)


class BoundOps:
    """Per-slot aggregation implementing a monotone combining function.

    The star join's bucket and thresholds only need three operations on
    F: fold one more per-input score into a partial aggregate, finish a
    full per-slot vector, and bound a partial given the next unseen
    score of every missing input.  ``sum`` (the paper's exposition),
    per-slot ``weighted`` sums, and ``max`` are provided; any F whose
    partials are totally ordered and monotone fits the same interface.
    """

    identity = 0.0

    def __init__(self, mode: str = "sum",
                 weights: Optional[Sequence[float]] = None):
        if mode not in ("sum", "weighted", "max"):
            raise ValueError(f"unsupported combiner mode {mode!r}")
        if mode == "weighted" and weights is None:
            raise ValueError("weighted mode needs per-slot weights")
        self.mode = mode
        self.weights = tuple(weights) if weights is not None else None

    def _scale(self, score: float, slot: int) -> float:
        if self.mode == "weighted":
            return self.weights[slot] * score
        return score

    def fold(self, partial: float, score: float, slot: int) -> float:
        """Aggregate one more input's score into a partial result."""
        scaled = self._scale(score, slot)
        if self.mode == "max":
            return max(partial, scaled)
        return partial + scaled

    def complete(self, scores: Sequence[float]) -> float:
        """F over a full per-slot score vector."""
        partial = self.identity
        for slot, score in enumerate(scores):
            partial = self.fold(partial, score, slot)
        return partial

    def bound(self, partial: float, nexts: Sequence[Optional[float]],
              unseen_slots: Sequence[int]) -> float:
        """Best total a partial can still reach; -inf if it never
        completes (an unseen input is exhausted)."""
        for slot in unseen_slots:
            s_next = nexts[slot]
            if s_next is None:
                return -math.inf
            partial = self.fold(partial, s_next, slot)
        return partial


class RankedInput(Protocol):
    """A score-descending stream of (id, score) tuples."""

    def peek_score(self) -> Optional[float]:
        """Score of the next tuple, or None when exhausted."""
        ...

    def pop(self) -> Optional[Tuple[int, float]]:
        """Retrieve the next tuple, or None when exhausted."""
        ...


class ListInput:
    """A `RankedInput` over a pre-sorted list (tests, examples, ablation)."""

    def __init__(self, tuples: Sequence[Tuple[int, float]]):
        scores = [s for _, s in tuples]
        if any(a < b for a, b in zip(scores, scores[1:])):
            raise ValueError("ranked input must be sorted score-descending")
        self._tuples = list(tuples)
        self._pos = 0

    def peek_score(self) -> Optional[float]:
        if self._pos >= len(self._tuples):
            return None
        return self._tuples[self._pos][1]

    def pop(self) -> Optional[Tuple[int, float]]:
        if self._pos >= len(self._tuples):
            return None
        tup = self._tuples[self._pos]
        self._pos += 1
        return tup


class _BucketEntry:
    """Partial join state of one id."""

    __slots__ = ("key", "seen_mask", "partial_sum", "scores")

    def __init__(self, key: int, k: int):
        self.key = key
        self.seen_mask = 0
        self.partial_sum = 0.0
        self.scores = [0.0] * k


class CompletedResult:
    """An id matched in all k inputs, with its per-input scores."""

    __slots__ = ("key", "score", "scores")

    def __init__(self, key: int, score: float, scores: List[float]):
        self.key = key
        self.score = score
        self.scores = scores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Completed {self.key} score={self.score:.3f}>"


class TopKStarJoin:
    """Incremental star rank-join over k ranked inputs.

    Drive it with `step()` (one tuple retrieval); read `completed` for
    generated results and `threshold()` for the bound on everything not
    yet generated.  A driver (e.g. the top-K keyword algorithm) combines
    the threshold with its own cross-level bounds before emitting.
    """

    def __init__(self, inputs: Sequence[RankedInput], target_k: int,
                 bound_mode: str = GROUP,
                 stats: Optional[ExecutionStats] = None,
                 ops: Optional[BoundOps] = None):
        if bound_mode not in BOUND_MODES:
            raise ValueError(
                f"unknown bound mode {bound_mode!r}; one of {BOUND_MODES}")
        if not inputs:
            raise ValueError("need at least one ranked input")
        self.inputs = list(inputs)
        self.k = len(inputs)
        self.target_k = target_k
        self.bound_mode = bound_mode
        self.ops = ops if ops is not None else BoundOps()
        self.stats = stats if stats is not None else ExecutionStats()
        self._bucket: Dict[int, _BucketEntry] = {}
        # Group index: seen_mask -> (best partial sum, member count).  The
        # best is a monotone cache: when its witness leaves the group the
        # value may be stale-high, which keeps the bound sound; it is
        # dropped as soon as the group empties.
        self._group_best: Dict[int, float] = {}
        self._group_count: Dict[int, int] = {}
        self._max_scores = [inp.peek_score() for inp in inputs]
        self._round_robin = 0
        self.completed: List[CompletedResult] = []
        self._completed_keys: set = set()
        self.tuples_retrieved = 0

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def _choose_input(self) -> Optional[int]:
        alive = [i for i, inp in enumerate(self.inputs)
                 if inp.peek_score() is not None]
        if not alive:
            return None
        if len(self.completed) < self.target_k:
            for _ in range(self.k):
                i = self._round_robin
                self._round_robin = (self._round_robin + 1) % self.k
                if i in alive:
                    return i
            return alive[0]
        return max(alive, key=lambda i: self.inputs[i].peek_score())

    def step(self) -> bool:
        """Retrieve one tuple; False when every input is exhausted."""
        i = self._choose_input()
        if i is None:
            return False
        tup = self.inputs[i].pop()
        if tup is None:
            return True
        key, score = tup
        self.tuples_retrieved += 1
        self.stats.tuples_scanned += 1
        if key in self._completed_keys:
            # Later (lower-scored) occurrences of a finished id: the join
            # has set semantics, the first completion already holds every
            # input's maximum.
            return True
        entry = self._bucket.get(key)
        if entry is None:
            entry = _BucketEntry(key, self.k)
            self._bucket[key] = entry
        bit = 1 << i
        if entry.seen_mask & bit:
            # A lower-scored duplicate from the same input: set semantics,
            # the first (max) occurrence already counted.
            return True
        old_mask = entry.seen_mask
        entry.seen_mask |= bit
        entry.scores[i] = score
        entry.partial_sum = self.ops.fold(entry.partial_sum, score, i)
        if entry.seen_mask == (1 << self.k) - 1:
            del self._bucket[key]
            self._completed_keys.add(key)
            self.completed.append(
                CompletedResult(key, entry.partial_sum, entry.scores))
            self._forget_group(old_mask)
        else:
            self._update_group(old_mask, entry)
        return True

    def _update_group(self, old_mask: int, entry: _BucketEntry) -> None:
        if old_mask:
            self._forget_group(old_mask)
        mask = entry.seen_mask
        self._group_count[mask] = self._group_count.get(mask, 0) + 1
        current = self._group_best.get(mask, -math.inf)
        if entry.partial_sum > current:
            self._group_best[mask] = entry.partial_sum

    def _forget_group(self, mask: int) -> None:
        if not mask:
            return
        remaining = self._group_count.get(mask, 0) - 1
        if remaining <= 0:
            self._group_count.pop(mask, None)
            self._group_best.pop(mask, None)
        else:
            self._group_count[mask] = remaining

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def progress(self) -> Dict[str, int]:
        """A cheap snapshot of the join state, for span tags and logs:
        tuples retrieved, completions, partial buckets still pending and
        live seen-mask groups (the §IV-B bound's granularity)."""
        return {
            "tuples_retrieved": self.tuples_retrieved,
            "completed": len(self.completed),
            "pending": len(self._bucket),
            "groups": len(self._group_count),
        }

    # ------------------------------------------------------------------
    # thresholds
    # ------------------------------------------------------------------

    def _next_scores(self) -> List[Optional[float]]:
        return [inp.peek_score() for inp in self.inputs]

    def threshold(self) -> float:
        """Upper bound on the score of any result not yet completed."""
        self.stats.threshold_checks += 1
        nexts = self._next_scores()
        if self.bound_mode == CLASSIC:
            return self._classic_threshold(nexts)
        return self._group_threshold(nexts)

    def _classic_threshold(self, nexts: List[Optional[float]]) -> float:
        best = -math.inf
        for i, s_next in enumerate(nexts):
            if s_next is None:
                continue
            vector = []
            feasible = True
            for j, s_max in enumerate(self._max_scores):
                if j == i:
                    vector.append(s_next)
                elif s_max is None:
                    feasible = False
                    break
                else:
                    vector.append(s_max)
            if feasible:
                best = max(best, self.ops.complete(vector))
        # Partial results are not tracked separately by HRJN; ids already
        # seen somewhere are covered because s_m^j >= their seen scores.
        if any(s is None for s in nexts) and self._bucket:
            best = max(best, self._group_threshold(nexts))
        return best

    def _group_threshold(self, nexts: List[Optional[float]]) -> float:
        if self.ops.mode == "sum":
            return self._group_threshold_sum(nexts)
        # Case 1: ids unseen everywhere.
        best = self.ops.bound(self.ops.identity, nexts, range(self.k))
        for mask, partial_best in self._group_best.items():
            unseen = [j for j in range(self.k) if not mask & (1 << j)]
            total = self.ops.bound(partial_best, nexts, unseen)
            if total > best:
                best = total
        return best

    def _group_threshold_sum(self, nexts: List[Optional[float]]) -> float:
        """Additive fast path: precompute the sum over alive inputs once,
        then each group's bound is partial + (next_sum - seen part)."""
        next_sum = 0.0
        alive_mask = 0
        for j, s_next in enumerate(nexts):
            if s_next is not None:
                next_sum += s_next
                alive_mask |= 1 << j
        full = (1 << self.k) - 1
        best = next_sum if alive_mask == full else -math.inf
        for mask, partial_best in self._group_best.items():
            unseen = full & ~mask
            if unseen & ~alive_mask:
                continue  # an unseen input is exhausted: dead partial
            total = partial_best
            for j in range(self.k):
                if unseen & (1 << j):
                    total += nexts[j]
            if total > best:
                best = total
        return best

    @property
    def exhausted(self) -> bool:
        return all(inp.peek_score() is None for inp in self.inputs)


def topk_join(relations: Sequence[Sequence[Tuple[int, float]]], k: int,
              bound_mode: str = GROUP
              ) -> Tuple[List[CompletedResult], int]:
    """Standalone top-K star join over pre-sorted relations.

    Runs until K results can be *emitted* (score >= threshold for the
    still-unseen results) or the inputs are exhausted.  Returns the
    emitted results in emission order and the number of tuples retrieved
    -- the ablation metric comparing the two bounds.
    """
    join = TopKStarJoin([ListInput(r) for r in relations], k, bound_mode)
    emitted: List[CompletedResult] = []
    buffer: List[CompletedResult] = []
    emitted_keys: set = set()
    while len(emitted) < k:
        progressed = join.step()
        buffer = [c for c in join.completed if c.key not in emitted_keys]
        buffer.sort(key=lambda c: -c.score)
        bound = join.threshold()
        while buffer and len(emitted) < k and (
                buffer[0].score >= bound or join.exhausted):
            result = buffer.pop(0)
            emitted.append(result)
            emitted_keys.add(result.key)
        if not progressed:
            break
    return emitted, join.tuples_retrieved
