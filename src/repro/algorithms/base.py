"""Shared query/result types and execution statistics.

Every algorithm in this package -- the paper's join-based family and the
three baselines -- consumes a list of query terms and produces
`SearchResult` objects, so they are interchangeable behind
`repro.api.XMLDatabase` and directly comparable in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..xmltree.tree import Node

ELCA = "elca"
SLCA = "slca"
SEMANTICS = (ELCA, SLCA)


def check_semantics(semantics: str) -> str:
    if semantics not in SEMANTICS:
        raise ValueError(
            f"unknown semantics {semantics!r}; expected one of {SEMANTICS}")
    return semantics


@dataclass
class SearchResult:
    """One ELCA/SLCA answer.

    Attributes
    ----------
    node:
        The matched element.
    level:
        Tree level of the node (root = 1).
    score:
        Global ranking score (sum of the best damped per-keyword
        witnesses); 0.0 when the algorithm ran without scoring.
    witness_scores:
        Best damped local score per query keyword, aligned with the
        query's term order.
    """

    node: Node
    level: int
    score: float = 0.0
    witness_scores: Tuple[float, ...] = ()

    @property
    def dewey(self) -> Tuple[int, ...]:
        return self.node.dewey

    def fragment(self, indent: bool = False) -> str:
        """The result subtree serialized as XML -- what a keyword-search
        UI would show the user for this answer."""
        return self.node.to_xml(indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = ".".join(map(str, self.node.dewey))
        return f"<Result {self.node.tag}@{path} score={self.score:.3f}>"


def sort_by_document_order(results: List[SearchResult]) -> List[SearchResult]:
    return sorted(results, key=lambda r: r.node.dewey)


def sort_by_score(results: List[SearchResult]) -> List[SearchResult]:
    """Descending score; document order breaks ties deterministically."""
    return sorted(results, key=lambda r: (-r.score, r.node.dewey))


@dataclass
class ExecutionStats:
    """Work counters, the scale-free complement of wall-clock numbers.

    The benchmarks report these next to the timings so the *shape* claims
    of the paper (which algorithm touches less data where) can be checked
    independently of Python constant factors.
    """

    levels_processed: int = 0
    joins: int = 0
    merge_joins: int = 0
    index_joins: int = 0
    tuples_scanned: int = 0
    lookups: int = 0
    candidates_checked: int = 0
    results_emitted: int = 0
    erasures: int = 0
    threshold_checks: int = 0
    # Query-serving cache counters (repro.cache), filled in by
    # `XMLDatabase` when a cache is wired in: result-cache hits skip
    # level evaluation entirely, so `levels_processed` stays 0 for them.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    # Resource accounting (repro.obs.account): bytes the query's
    # evaluation actually consumed, folded in by `XMLDatabase` from the
    # active `ResourceAccount`.  Mapped vs copied distinguishes
    # zero-copy mmap views from whole-payload materializations;
    # `postings_bytes_read` is the compressed bytes fed to the column
    # decoders; the cache pair attributes postings-cache hits (bytes a
    # re-read was avoided for) vs misses (bytes paid to materialize).
    bytes_mapped: int = 0
    bytes_copied: int = 0
    bytes_decompressed: int = 0
    postings_bytes_read: int = 0
    columns_decompressed: int = 0
    cache_bytes_saved: int = 0
    cache_bytes_paid: int = 0
    # Deadline bookkeeping (repro.reliability): a query stopped by an
    # expired budget under the "partial" policy sets `partial` and
    # counts the bottom-up levels it never reached in `levels_skipped`
    # (the processed ones stay in `levels_processed`).
    partial: bool = False
    levels_skipped: int = 0
    per_level_plan: List[Tuple[int, str]] = field(default_factory=list)
    # Full per-codec/per-level resource breakdown
    # (`ResourceAccount.as_dict`); not a counter -- `merge` sums the
    # nested numeric fields recursively.  None when no accounting ran.
    resources: Optional[Dict[str, object]] = None
    # EXPLAIN ANALYZE payload (repro.obs.audit.PlanAudit), attached by
    # `XMLDatabase.search(audit=True)` / `explain(analyze=True)`.  Not a
    # counter: `merge` keeps the first non-None audit it sees.
    audit: Optional[object] = None

    _COUNTER_FIELDS = (
        "levels_processed", "joins", "merge_joins", "index_joins",
        "tuples_scanned", "lookups", "candidates_checked",
        "results_emitted", "erasures", "threshold_checks", "cache_hits",
        "cache_misses", "cache_evictions", "bytes_mapped", "bytes_copied",
        "bytes_decompressed", "postings_bytes_read",
        "columns_decompressed", "cache_bytes_saved", "cache_bytes_paid",
        "levels_skipped")

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Fold `other` into this object: counters add, `partial` ORs
        (a batch is partial if any member is), the per-level plan
        concatenates (plan order = fold order).  Returns self, so
        ``sum`` / ``functools.reduce`` folds read naturally."""
        from ..obs.account import merge_resources

        for name in self._COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.partial = self.partial or other.partial
        self.per_level_plan.extend(other.per_level_plan)
        self.resources = merge_resources(self.resources, other.resources)
        if self.audit is None:
            self.audit = other.audit
        return self

    def __iadd__(self, other: "ExecutionStats") -> "ExecutionStats":
        return self.merge(other)

    def __add__(self, other: "ExecutionStats") -> "ExecutionStats":
        merged = ExecutionStats()
        merged.merge(self)
        return merged.merge(other)

    def as_dict(self) -> Dict[str, float]:
        return {
            "levels_processed": self.levels_processed,
            "joins": self.joins,
            "merge_joins": self.merge_joins,
            "index_joins": self.index_joins,
            "tuples_scanned": self.tuples_scanned,
            "lookups": self.lookups,
            "candidates_checked": self.candidates_checked,
            "results_emitted": self.results_emitted,
            "erasures": self.erasures,
            "threshold_checks": self.threshold_checks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "bytes_mapped": self.bytes_mapped,
            "bytes_copied": self.bytes_copied,
            "bytes_decompressed": self.bytes_decompressed,
            "postings_bytes_read": self.postings_bytes_read,
            "columns_decompressed": self.columns_decompressed,
            "cache_bytes_saved": self.cache_bytes_saved,
            "cache_bytes_paid": self.cache_bytes_paid,
            "partial": self.partial,
            "levels_skipped": self.levels_skipped,
        }


@dataclass
class TopKResult:
    """Result list of a top-K run plus its execution statistics.

    ``partial`` marks a run stopped by an expired `Deadline` under the
    "partial" policy; its results are then a prefix of the unbounded
    run's emission order, and ``bound`` is the guarantee gap: no result
    the run did not return can score above it.  Complete runs leave
    ``bound`` as ``None``.
    """

    results: List[SearchResult]
    stats: ExecutionStats
    terminated_early: bool = False
    partial: bool = False
    bound: Optional[float] = None

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class EmptyResultError(LookupError):
    """Raised by strict APIs when a query term has no occurrences."""
