"""Query algorithms: the paper's join-based family and the baselines."""

from .base import (ELCA, SLCA, EmptyResultError, ExecutionStats,
                   SearchResult, TopKResult, sort_by_document_order,
                   sort_by_score)
from .erasure import BitmapEraser, IntervalEraser, make_eraser
from .join_based import JoinBasedSearch
from .stack_based import StackBasedSearch
from .index_based import IndexBasedSearch
from .rdil import RDILSearch
from .topk_join import (CLASSIC, GROUP, CompletedResult, ListInput,
                        TopKStarJoin, topk_join)
from .topk_keyword import TopKKeywordSearch
from .hybrid import HybridTopKSearch
from .oracle import SemanticsOracle
from .explain import LevelPlan, QueryPlan, explain

__all__ = [
    "ELCA",
    "SLCA",
    "EmptyResultError",
    "ExecutionStats",
    "SearchResult",
    "TopKResult",
    "sort_by_document_order",
    "sort_by_score",
    "BitmapEraser",
    "IntervalEraser",
    "make_eraser",
    "JoinBasedSearch",
    "StackBasedSearch",
    "IndexBasedSearch",
    "RDILSearch",
    "CLASSIC",
    "GROUP",
    "CompletedResult",
    "ListInput",
    "TopKStarJoin",
    "topk_join",
    "TopKKeywordSearch",
    "HybridTopKSearch",
    "SemanticsOracle",
    "LevelPlan",
    "QueryPlan",
    "explain",
]
