"""Join-based top-K keyword search (paper section IV-C).

Levels are processed bottom-up exactly like the general join-based
algorithm, but each level's join runs as a *top-K star join* over the
score-ordered columnar cursors (`repro.index.scored`):

* per term, sequences are grouped by length so each group has a single
  score order valid at every level; a per-level cursor merges the group
  heads online;
* the star join completes a JDewey number once every keyword has shown a
  *free* (non-erased) occurrence of it -- which is precisely the ELCA
  test, so completions are results, scored by the sum of first-seen
  (= maximum) damped witnesses;
* a completed result is emitted as soon as its score reaches the global
  bound: the star join's own threshold (unseen + partially joined ids at
  this level) combined with the precomputed cross-level bound
  ``T(l) = max_{l' <= l} sum_i U_i(l')`` where ``U_i(l')`` is the best
  possible damped score of term i at level ``l'`` (the level-skipping
  rule of the paper falls out of the max: columns with no exact-length
  sequences can never dominate the column below);
* the query terminates the moment K results are emitted.  Otherwise the
  level is drained, the full-column join identifies every C-node at the
  level (erased occurrences included -- containment ignores exclusion),
  and their ranges are erased for the levels above.

The completeness/efficiency trade the paper measures falls out of the
structure: with highly correlated keywords many results complete early
and the scan stops after a few tuples; with uncorrelated keywords the
algorithm drains every level and ends up doing strictly more work than
the general join-based algorithm (Figure 10(a) versus 10(b)-(c)).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..index.columnar import ColumnarIndex, ColumnarPostings
from ..index.scored import ColumnCursor, ScoredPostings
from ..obs.profiler import profile_phase
from ..obs.tracing import NULL_TRACER
from ..planner.plans import JoinPlanner
from ..reliability.deadline import Deadline
from ..reliability.errors import DeadlineExceeded
from ..scoring.ranking import RankingModel
from .base import (ELCA, SLCA, ExecutionStats, SearchResult, TopKResult,
                   check_semantics)
from ..scoring.ranking import (MaxCombiner, SumCombiner,
                               WeightedSumCombiner)
from .erasure import make_eraser
from .topk_join import GROUP, BoundOps, TopKStarJoin


class _CursorInput:
    """Adapts a `ColumnCursor` to the star join's RankedInput protocol."""

    __slots__ = ("cursor",)

    def __init__(self, cursor: ColumnCursor):
        self.cursor = cursor

    def peek_score(self) -> Optional[float]:
        return self.cursor.peek_score()

    def pop(self) -> Optional[Tuple[int, float]]:
        item = self.cursor.pop()
        if item is None:
            return None
        number, _ordinal, score = item
        return number, score


class _StreamState:
    """Out-of-band stream outcome: completion flag plus, for budgeted
    runs stopped early under the "partial" policy, the guarantee gap.

    ``bound`` is the score below which the partial run proves nothing:
    every result it *did* yield scored at least ``bound`` (emission
    requires beating the live threshold), and any result it never
    reached scores at most ``bound``.  The yielded list is therefore a
    prefix of the unbounded run's emission order."""

    __slots__ = ("finished", "partial", "bound")

    def __init__(self):
        self.finished = False
        self.partial = False
        self.bound: Optional[float] = None


class TopKKeywordSearch:
    """Top-K ELCA/SLCA search over a `ColumnarIndex`."""

    def __init__(self, index: ColumnarIndex, bound_mode: str = GROUP,
                 eraser_mode: str = "auto",
                 planner: Optional[JoinPlanner] = None,
                 tracer=None):
        self.index = index
        self.bound_mode = bound_mode
        self.eraser_mode = eraser_mode
        self.planner = planner if planner is not None else JoinPlanner()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.ranking: RankingModel = index.ranking

    def search(self, terms: Sequence[str], k: int,
               semantics: str = ELCA,
               deadline: Optional[Deadline] = None) -> TopKResult:
        """The top-`k` results by score, best first.

        Built on `stream`: consuming exactly k results *is* the early
        termination -- the generator stops advancing cursors the moment
        the k-th result unblocks.

        ``deadline`` (a `repro.reliability.Deadline`) bounds the run in
        wall-clock terms; with the ``partial`` policy an expired run
        returns the prefix emitted so far with ``TopKResult.partial``
        set and ``TopKResult.bound`` as the guarantee gap.
        """
        stats = ExecutionStats()
        if k <= 0:
            check_semantics(semantics)
            return TopKResult([], stats)
        state = _StreamState()
        generator = self.stream(terms, semantics, stats=stats,
                                target_k=k, _state=state,
                                deadline=deadline)
        emitted: List[SearchResult] = []
        for result in generator:
            emitted.append(result)
            if len(emitted) >= k:
                break
        generator.close()
        with self.tracer.span("topk_termination") as tspan, \
                profile_phase("topk"):
            tspan.tag(k=k, emitted=len(emitted),
                      terminated_early=not state.finished,
                      partial=state.partial,
                      levels_processed=stats.levels_processed,
                      tuples_scanned=stats.tuples_scanned)
        return TopKResult(emitted, stats,
                          terminated_early=not state.finished,
                          partial=state.partial, bound=state.bound)

    def stream(self, terms: Sequence[str], semantics: str = ELCA,
               stats: Optional[ExecutionStats] = None,
               target_k: int = 2 ** 30, _state=None,
               deadline: Optional[Deadline] = None):
        """Yield every result best-first, lazily (progressive top-K).

        The paper's "generated results ... are output without blocking"
        as a generator: each `next()` advances the bottom-up rank joins
        only until one more result's score provably dominates everything
        unseen.  Abandoning the generator abandons the remaining work,
        so ``itertools.islice(stream(...), k)`` behaves exactly like
        `search(..., k)`.

        ``deadline`` is polled at level boundaries and every few
        rank-join retrievals (the emission-attempt cadence).  On expiry
        the ``raise`` policy raises `DeadlineExceeded` out of the
        generator; the ``partial`` policy ends the stream cleanly after
        recording the guarantee gap in the caller-supplied ``_state``.
        Results already yielded are exactly the unbounded run's emission
        prefix either way -- emission always required beating the live
        bound.
        """
        check_semantics(semantics)
        tracer = self.tracer
        if stats is None:
            stats = ExecutionStats()
        state = _state if _state is not None else _StreamState()
        terms = list(terms)
        if not terms:
            state.finished = True
            return

        def stop_partial(level: int, engine_bound: float) -> None:
            # Unyielded-but-buffered results must stay under the gap
            # too; the buffer top caps them (heap root = best score).
            state.partial = True
            state.bound = max(engine_bound,
                              -buffer[0][0] if buffer else -float("inf"))
            stats.partial = True
            stats.levels_skipped += level

        buffer: List[Tuple[float, Tuple[int, ...], SearchResult]] = []
        try:
            with tracer.span("postings_fetch", terms=list(terms)) as pspan, \
                    profile_phase("fetch"):
                postings = self.index.query_postings(terms)
                pspan.tag(list_sizes=[len(p) for p in postings])
        except DeadlineExceeded:
            # A scoped deadline expired while fetching postings; with no
            # bound arithmetic yet the gap is vacuous (inf).
            if deadline is None or not deadline.partial_ok:
                raise
            state.partial = True
            state.bound = float("inf")
            stats.partial = True
            return
        if any(len(p) == 0 for p in postings):
            state.finished = True
            return
        term_order = {p.term: i for i, p in enumerate(postings)}
        caller_slot = [term_order[t] for t in terms]
        ops = self._bound_ops(caller_slot)

        damping_base = self.ranking.damping.base
        scored = [ScoredPostings(p, damping_base) for p in postings]
        erasers = [make_eraser(self.eraser_mode, len(p)) for p in postings]
        start_level = min(p.max_len for p in postings)
        cross_bound = self._cross_level_bounds(scored, start_level, ops)

        # `buffer` (declared above, so the partial-stop helper closes
        # over it) holds completed-but-unemitted results: max-heap by
        # score.
        for level in range(start_level, 0, -1):
            below = cross_bound[level - 2] if level > 1 else -float("inf")
            if deadline is not None and deadline.expired():
                if not deadline.partial_ok:
                    deadline.raise_expired()
                stop_partial(level, cross_bound[level - 1])
                return
            try:
                columns = [p.column(level) for p in postings]
            except DeadlineExceeded:
                # Raised by a lazy column fetch polling the scoped
                # deadline mid-materialization.
                if deadline is None or not deadline.partial_ok:
                    raise
                stop_partial(level, cross_bound[level - 1])
                return
            if any(len(c) == 0 for c in columns):
                while buffer and -buffer[0][0] >= below:
                    stats.results_emitted += 1
                    yield heapq.heappop(buffer)[2]
                continue
            stats.levels_processed += 1
            tuples_mark = stats.tuples_scanned
            inputs = [
                _CursorInput(s.cursor(level, skip=e.is_erased))
                for s, e in zip(scored, erasers)
            ]
            # target_k sets the paper's cursor-policy switch (round-robin
            # until K completions, then max-s^i); a pure stream has no K
            # and stays round-robin.
            join = TopKStarJoin(inputs, target_k, self.bound_mode, stats,
                                ops)
            consumed = 0
            # Emission needs a *fresh* threshold (group partials can push
            # it up), so attempts happen when completions arrive or every
            # few retrievals -- skipping attempts only delays emission,
            # never corrupts it.  The rank-join span stays open across
            # `yield`s, so its duration includes consumer time when the
            # stream is driven incrementally.
            steps_since_attempt = 0
            with tracer.span("rank_join", level=level) as jspan, \
                    profile_phase("rank_join"):
                while join.step():
                    steps_since_attempt += 1
                    if (len(join.completed) == consumed
                            and steps_since_attempt < 16):
                        continue
                    steps_since_attempt = 0
                    for completed in join.completed[consumed:]:
                        result = self._materialize(
                            completed, level, postings, columns, erasers,
                            semantics, caller_slot)
                        if result is not None:
                            heapq.heappush(
                                buffer,
                                (-result.score, result.node.dewey, result))
                    consumed = len(join.completed)
                    bound = max(join.threshold(), below)
                    while buffer and -buffer[0][0] >= bound:
                        stats.results_emitted += 1
                        yield heapq.heappop(buffer)[2]
                    # Same cadence as emission attempts: cheap (the
                    # threshold is already fresh) and bounded lag.
                    if deadline is not None and deadline.expired():
                        if not deadline.partial_ok:
                            deadline.raise_expired()
                        stop_partial(level, bound)
                        return
                for completed in join.completed[consumed:]:
                    result = self._materialize(completed, level, postings,
                                               columns, erasers, semantics,
                                               caller_slot)
                    if result is not None:
                        heapq.heappush(buffer,
                                       (-result.score, result.node.dewey,
                                        result))
                jspan.tag(tuples=stats.tuples_scanned - tuples_mark,
                          **join.progress())
            # Level drained: determine every C-node (erased occurrences
            # included) and erase their ranges for the levels above.
            self._erase_level(columns, erasers, stats, level)
            if level == 1:
                # Only emission remains: anything yielded from here on
                # does not count as early termination.
                state.finished = True
            while buffer and -buffer[0][0] >= below:
                stats.results_emitted += 1
                yield heapq.heappop(buffer)[2]
        # All levels done: everything buffered is final, in score order.
        state.finished = True
        while buffer:
            stats.results_emitted += 1
            yield heapq.heappop(buffer)[2]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _bound_ops(self, caller_slot: List[int]) -> BoundOps:
        """Combiner-specific bound arithmetic, in execution slot order.

        The paper's algorithms only require monotonicity of F; the
        star-join bounds are implemented for sum (the paper's
        exposition), weighted sum and max.  Other combiners work on the
        complete-result path but have no top-K bound arithmetic here.
        """
        combiner = self.ranking.combiner
        if isinstance(combiner, WeightedSumCombiner):
            if len(combiner.weights) != len(caller_slot):
                raise ValueError(
                    f"{len(combiner.weights)} weights for "
                    f"{len(caller_slot)} query terms")
            input_weights = [0.0] * len(caller_slot)
            for caller_index, slot in enumerate(caller_slot):
                input_weights[slot] = combiner.weights[caller_index]
            return BoundOps("weighted", input_weights)
        if isinstance(combiner, MaxCombiner):
            return BoundOps("max")
        if isinstance(combiner, SumCombiner):
            return BoundOps("sum")
        raise NotImplementedError(
            f"top-K bounds not implemented for "
            f"{type(combiner).__name__}; use the complete-result path "
            "(db.search_ranked) or a sum/weighted/max combiner")

    def _cross_level_bounds(self, scored: List[ScoredPostings],
                            start_level: int,
                            ops: BoundOps) -> List[float]:
        """``cross_bound[l-1]`` bounds every result at levels <= l."""
        per_level = []
        for level in range(1, start_level + 1):
            per_level.append(
                ops.complete([s.max_damped(level) for s in scored]))
        bounds: List[float] = []
        running = -float("inf")
        for level_sum in per_level:
            running = max(running, level_sum)
            bounds.append(running)
        return bounds

    def _materialize(self, completed, level: int,
                     postings: List[ColumnarPostings], columns, erasers,
                     semantics: str,
                     caller_slot: List[int]) -> Optional[SearchResult]:
        """Turn a star-join completion into a result (or reject for SLCA)."""
        number = completed.key
        if semantics == SLCA:
            for t, column in enumerate(columns):
                a, b = column.run_of(number)
                ordinals = column.seq_idx[a:b]
                lo, hi = int(ordinals[0]), int(ordinals[-1]) + 1
                if erasers[t].erased_count(lo, hi):
                    return None
        node = self.index.node_at(level, number)
        witness = tuple(completed.scores[slot] for slot in caller_slot)
        score = self.ranking.score_result(witness)
        return SearchResult(node, level, score, witness)

    def _erase_level(self, columns, erasers, stats: ExecutionStats,
                     level: int) -> None:
        plan_mark = len(stats.per_level_plan)
        erasure_mark = stats.erasures
        with self.tracer.span("erase", level=level) as espan, \
                profile_phase("erase"):
            joined = self.planner.intersect_all(
                [c.distinct for c in columns], stats, level)
            espan.tag(
                plan=[alg for _lvl, alg
                      in stats.per_level_plan[plan_mark:]],
                inputs=[int(c.n_distinct) for c in columns],
                output=int(len(joined)))
            if len(joined) == 0:
                return
            for t, column in enumerate(columns):
                idx = np.searchsorted(column.distinct, joined)
                lows = column.run_starts[idx]
                highs = column.run_starts[idx + 1]
                for j in range(len(joined)):
                    ordinals = column.seq_idx[int(lows[j]):int(highs[j])]
                    erasers[t].mark(int(ordinals[0]), int(ordinals[-1]) + 1)
                    stats.erasures += len(ordinals)
            espan.tag(erased=stats.erasures - erasure_mark)

    @staticmethod
    def _flush(buffer, emitted: List[SearchResult], k: int,
               bound: float) -> bool:
        """Emit buffered results that beat `bound`; True if K reached."""
        while buffer and len(emitted) < k and -buffer[0][0] >= bound:
            emitted.append(heapq.heappop(buffer)[2])
        return len(emitted) >= k


def search_topk(index: ColumnarIndex, terms: Sequence[str], k: int,
                semantics: str = ELCA, bound_mode: str = GROUP,
                deadline: Optional[Deadline] = None) -> TopKResult:
    """One-shot convenience wrapper around `TopKKeywordSearch.search`."""
    return TopKKeywordSearch(index, bound_mode).search(terms, k, semantics,
                                                       deadline=deadline)
