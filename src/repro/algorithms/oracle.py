"""Reference (naive) semantics oracle.

A direct bottom-up evaluation of the LCA / ELCA / SLCA definitions from
paper section II-A, with exact result scores.  It is deliberately simple
-- one pass over the whole tree per query -- and serves as the ground
truth every optimized algorithm is tested against.

Definitions implemented (k query keywords, C(u) = "u's subtree contains
all k keywords"):

* ``LCA set``  -- all nodes u with C(u) that are the LCA of at least one
  occurrence combination; this equals {u : every keyword occurs in the
  subtree of u via at least one *distinct child branch or self*}, and we
  compute it directly from the definition on small inputs only.
* ``SLCA``     -- u with C(u) and no descendant with C (the minimal
  C-nodes).
* ``ELCA``     -- u such that every keyword retains a witness occurrence
  under u after excluding occurrences lying under a C-node strictly
  below u.  This is the recurrence
  ``E(u) = direct(u)  U  union over children c of (E(c) if not C(c))``,
  and u is an ELCA iff E(u) covers all keywords (and scoring uses those
  free witnesses).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..index.inverted import InvertedIndex
from ..scoring.ranking import RankingModel
from ..xmltree.dewey import lca as dewey_lca
from ..xmltree.tree import Node, XMLTree
from .base import ELCA, SLCA, SearchResult, check_semantics


class SemanticsOracle:
    """Ground-truth evaluator for one document."""

    def __init__(self, tree: XMLTree, index: InvertedIndex,
                 ranking: Optional[RankingModel] = None):
        self.tree = tree
        self.index = index
        self.ranking = ranking if ranking is not None else index.ranking

    # ------------------------------------------------------------------
    # occurrence gathering
    # ------------------------------------------------------------------

    def _direct_bits(self, terms: Sequence[str]
                     ) -> Tuple[Dict[Node, int], Dict[Node, List[float]]]:
        """Per-node keyword bitmask and per-node best local score by term."""
        bits: Dict[Node, int] = {}
        local: Dict[Node, List[float]] = {}
        for i, term in enumerate(terms):
            for posting in self.index.term_list(term).postings:
                node = self.tree.node_by_dewey(posting.dewey)
                bits[node] = bits.get(node, 0) | (1 << i)
                scores = local.setdefault(node, [0.0] * len(terms))
                scores[i] = max(scores[i], posting.score)
        return bits, local

    # ------------------------------------------------------------------
    # ELCA / SLCA with exact scores
    # ------------------------------------------------------------------

    def evaluate(self, terms: Sequence[str], semantics: str = ELCA
                 ) -> List[SearchResult]:
        """All results under `semantics`, scored, in document order."""
        check_semantics(semantics)
        terms = list(terms)
        if not terms:
            return []
        full = (1 << len(terms)) - 1
        direct_bits, direct_scores = self._direct_bits(terms)
        if not direct_bits:
            return []

        contains: Dict[Node, int] = {}
        free: Dict[Node, int] = {}
        # Best damped score per keyword among *free* occurrences under the
        # node (free = not blocked by a C-node strictly below).
        best: Dict[Node, List[float]] = {}
        child_has_c: Dict[Node, bool] = {}
        damping = self.ranking.damping
        results: List[SearchResult] = []

        # Reversed document order visits every node after its children.
        for node in reversed(self.tree.nodes):
            c_bits = direct_bits.get(node, 0)
            f_bits = c_bits
            scores = list(direct_scores.get(node, [0.0] * len(terms)))
            has_c_child = False
            for child in node.children:
                child_contains = contains.pop(child, 0)
                c_bits |= child_contains
                child_free = free.pop(child, 0)
                child_best = best.pop(child, None)
                if child_contains == full:
                    has_c_child = True
                    # Blocked: the child subtree already has all keywords.
                    continue
                f_bits |= child_free
                if child_best is not None:
                    decay = damping(1)
                    for i in range(len(terms)):
                        damped = child_best[i] * decay
                        if damped > scores[i]:
                            scores[i] = damped
            contains[node] = c_bits
            free[node] = f_bits
            best[node] = scores
            child_has_c[node] = has_c_child

            if c_bits != full:
                continue
            is_result = (f_bits == full) if semantics == ELCA \
                else not has_c_child
            if is_result:
                score = self.ranking.score_result(scores)
                results.append(SearchResult(node, node.level, score,
                                            tuple(scores)))
        results.reverse()
        return results

    # ------------------------------------------------------------------
    # naive LCA enumeration (exponential -- small inputs only)
    # ------------------------------------------------------------------

    def all_lcas(self, terms: Sequence[str], limit: int = 200_000
                 ) -> Set[Tuple[int, ...]]:
        """The full LCA(L1, ..., Lk) set by enumeration.

        Demonstrates the exponential blow-up the paper motivates with;
        guarded by `limit` combinations.
        """
        lists = [self.index.term_list(t).deweys for t in terms]
        if any(not lst for lst in lists):
            return set()
        n_combos = 1
        for lst in lists:
            n_combos *= len(lst)
        if n_combos > limit:
            raise ValueError(
                f"{n_combos} combinations exceed the safety limit {limit}")
        return {dewey_lca(*combo) for combo in itertools.product(*lists)}
