"""The join-based algorithm for complete ELCA/SLCA results (section III).

Query evaluation is reduced to per-level relational joins over the
columnar JDewey index: at level ``l`` the JDewey numbers present in all
k term columns are exactly the nodes whose subtrees contain every
keyword (the C-nodes) at that level.  Levels are processed bottom-up,
so the semantic pruning is a pure bookkeeping step:

* when a number joins at level ``l``, every sequence through it is
  *erased* for all higher levels (those occurrences already belong to a
  subtree containing all keywords);
* an **ELCA** is a joined number that retains at least one *free*
  (non-erased) witness per keyword;
* an **SLCA** is a joined number with *no* erased sequence in its range
  (no C-node strictly below it).

Note on fidelity: the paper's Algorithm 1 pseudo-code erases only the
matched pairs, which under-prunes when one keyword's occurrences under a
C-node outnumber another's; the refined range-checking formulation in
section III-E ("when the join of column l-1 finishes, all the sequences
within A_k are excluded") erases the whole range, which is the rule that
matches the ELCA definition.  This module implements the range rule.

Scores are computed on the fly: a result's score sums, per keyword, the
best damped local score among its free witnesses (section II-B).

Two execution strategies share the level loop:

* the **vectorized** path (default) checks every joined number of a
  level with NumPy bulk operations -- bulk run-bound slicing via
  `Column.runs_of`, bulk erased counts / free masks from the erasure
  structures, and an `np.maximum.reduceat` segment-max for witness
  scores -- so per-level cost stays columnar, matching the paper's
  bulk-relational design;
* the **scalar** path (``vectorized=False``) applies the same test one
  candidate at a time.  It is retained as the differential-testing and
  benchmarking reference: both paths produce bit-identical results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..index.columnar import ColumnarIndex, ColumnarPostings
from ..obs.profiler import profile_phase
from ..obs.tracing import NULL_TRACER
from ..planner.plans import JoinPlanner
from ..reliability.deadline import Deadline
from ..reliability.errors import DeadlineExceeded
from ..scoring.ranking import RankingModel
from .base import (ELCA, SLCA, ExecutionStats, SearchResult, check_semantics,
                   sort_by_document_order)
from .erasure import make_eraser


class JoinBasedSearch:
    """Evaluates complete ELCA/SLCA result sets over a `ColumnarIndex`.

    Parameters
    ----------
    index:
        The columnar JDewey index of the document.
    planner:
        Join-algorithm selection policy; defaults to the paper's dynamic
        (context-aware) policy.
    eraser_mode:
        ``auto`` (default, picks a dense bitmap for small domains and
        roaring containers above one chunk), ``roaring``, ``bitmap``,
        or ``interval`` -- the section III-E range-checking structure;
        all compute identical results.
    vectorized:
        ``True`` (default) checks each level's candidates with bulk
        NumPy operations; ``False`` runs the per-candidate scalar
        reference path.  Results are identical.
    postings_cache:
        Optional `repro.cache.QueryCache`; when given, per-term postings
        lookups go through its LRU instead of straight to the index.
    tracer:
        Optional `repro.obs.Tracer`; defaults to the no-op tracer.  The
        engine records O(levels) spans per query (postings fetch, then
        per level: join tagged with the section III-C plan choice and
        cardinalities, scoring, erasure) -- never per-candidate spans.
    """

    def __init__(self, index: ColumnarIndex,
                 planner: Optional[JoinPlanner] = None,
                 eraser_mode: str = "auto",
                 vectorized: bool = True,
                 postings_cache=None,
                 tracer=None):
        self.index = index
        self.planner = planner if planner is not None else JoinPlanner()
        self.eraser_mode = eraser_mode
        self.vectorized = vectorized
        self.postings_cache = postings_cache
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.ranking: RankingModel = index.ranking

    def evaluate(self, terms: Sequence[str], semantics: str = ELCA,
                 with_scores: bool = True, observer=None,
                 deadline: Optional[Deadline] = None
                 ) -> Tuple[List[SearchResult], ExecutionStats]:
        """All results for `terms`, in document order, plus work counters.

        ``observer``, if given, is called per processed level as
        ``observer(level, columns, joined, emitted_at_level)`` -- the
        hook behind `repro.algorithms.explain`.

        ``deadline`` (a `repro.reliability.Deadline`) is polled once per
        level -- the cheap boundary of this bottom-up loop.  On expiry
        the ``raise`` policy raises `DeadlineExceeded`; the ``partial``
        policy stops cleanly and returns the results of the levels
        already processed (a subset of the unbounded result set, since
        same-level candidates never interact), with ``stats.partial``
        set and the unvisited levels counted in ``stats.levels_skipped``.
        """
        check_semantics(semantics)
        tracer = self.tracer
        stats = ExecutionStats()
        terms = list(terms)
        if not terms:
            return [], stats
        with tracer.span("postings_fetch", terms=list(terms)) as pspan, \
                profile_phase("fetch"):
            if self.postings_cache is not None:
                postings = self.postings_cache.query_postings(self.index,
                                                              terms)
            else:
                postings = self.index.query_postings(terms)
            pspan.tag(list_sizes=[len(p) for p in postings])
        if any(len(p) == 0 for p in postings):
            return [], stats
        # Term order after shortest-first sorting; remember the mapping so
        # witness scores line up with the caller's term order.
        term_order = {p.term: i for i, p in enumerate(postings)}
        caller_slot = [term_order[t] for t in terms]

        start_level = min(p.max_len for p in postings)
        erasers = [make_eraser(self.eraser_mode, len(p)) for p in postings]
        damping_base = self.ranking.damping.base
        results: List[SearchResult] = []

        for level in range(start_level, 0, -1):
            if deadline is not None and deadline.expired():
                if not deadline.partial_ok:
                    deadline.raise_expired()
                stats.partial = True
                stats.levels_skipped += level
                break
            try:
                self._process_level(level, postings, erasers, semantics,
                                    with_scores, caller_slot, damping_base,
                                    stats, results, observer, tracer)
            except DeadlineExceeded:
                # Raised mid-level by a lazy posting fetch polling the
                # thread-local deadline; downgrade per policy.  Results
                # emitted before the cut are individually valid (the
                # ELCA/SLCA test only reads lower-level erasures), so
                # keeping them preserves the subset guarantee.
                if deadline is None or not deadline.partial_ok:
                    raise
                stats.partial = True
                stats.levels_skipped += level
                break
        return sort_by_document_order(results), stats

    def _process_level(self, level: int, postings, erasers, semantics: str,
                       with_scores: bool, caller_slot: List[int],
                       damping_base: float, stats: ExecutionStats,
                       results: List[SearchResult], observer,
                       tracer) -> None:
        """Join, check, score and erase one level of the bottom-up loop."""
        columns = [p.column(level) for p in postings]
        if any(len(c) == 0 for c in columns):
            return
        stats.levels_processed += 1
        plan_mark = len(stats.per_level_plan)
        with tracer.span("join", level=level) as jspan, \
                profile_phase("join"):
            joined = self.planner.intersect_all(
                [c.distinct for c in columns], stats, level)
            jspan.tag(
                plan=[alg for _lvl, alg
                      in stats.per_level_plan[plan_mark:]],
                inputs=[int(c.n_distinct) for c in columns],
                output=int(len(joined)))
        if len(joined) == 0:
            if observer is not None:
                observer(level, columns, joined, 0)
            return
        # Run boundaries of every joined value in every column, in bulk.
        run_bounds = [column.runs_of(joined) for column in columns]
        with tracer.span("score", level=level) as sspan, \
                profile_phase("score"):
            if self.vectorized:
                emitted_at_level = self._check_level_vectorized(
                    joined, level, postings, columns, run_bounds,
                    erasers, semantics, with_scores, caller_slot,
                    damping_base, stats, results)
            else:
                emitted_at_level = 0
                for j, number in enumerate(joined):
                    stats.candidates_checked += 1
                    emitted = self._check_candidate(
                        int(number), level, j, postings, columns,
                        run_bounds, erasers, semantics, with_scores,
                        caller_slot, damping_base)
                    if emitted is not None:
                        results.append(emitted)
                        emitted_at_level += 1
                        stats.results_emitted += 1
            sspan.tag(candidates=int(len(joined)),
                      emitted=emitted_at_level)
        if observer is not None:
            observer(level, columns, joined, emitted_at_level)
        # Erase every joined range *after* the level is fully checked:
        # same-level candidates never interact (disjoint subtrees).
        erasure_mark = stats.erasures
        with tracer.span("erase", level=level) as espan, \
                profile_phase("erase"):
            if self.vectorized:
                for t, column in enumerate(columns):
                    lows, highs = run_bounds[t]
                    lo_ords, hi_ords = column.ordinal_spans(lows, highs)
                    erasers[t].mark_many(lo_ords, hi_ords)
                    stats.erasures += int((highs - lows).sum())
            else:
                for t, column in enumerate(columns):
                    lows, highs = run_bounds[t]
                    for j in range(len(joined)):
                        a, b = int(lows[j]), int(highs[j])
                        ordinals = column.seq_idx[a:b]
                        erasers[t].mark(int(ordinals[0]),
                                        int(ordinals[-1]) + 1)
                        stats.erasures += b - a
            espan.tag(erased=stats.erasures - erasure_mark)

    def _check_level_vectorized(self, joined: np.ndarray, level: int,
                                postings: List[ColumnarPostings], columns,
                                run_bounds, erasers, semantics: str,
                                with_scores: bool, caller_slot: List[int],
                                damping_base: float, stats: ExecutionStats,
                                results: List[SearchResult]) -> int:
        """Apply the ELCA/SLCA test to every joined number of a level.

        Bit-identical to looping `_check_candidate`, but every step is a
        bulk array operation: erased counts per run come from the
        eraser's prefix/binary-search bulk API, free witnesses from a
        bulk mask, and per-run best damped scores from a segment max
        (`np.maximum.reduceat`) over the concatenated run ordinals.
        """
        n = len(joined)
        stats.candidates_checked += n
        alive = np.ones(n, dtype=bool)
        for t, column in enumerate(columns):
            lows, highs = run_bounds[t]
            lo_ords, hi_ords = column.ordinal_spans(lows, highs)
            erased = erasers[t].erased_counts(lo_ords, hi_ords)
            if semantics == SLCA:
                alive &= erased == 0
            else:
                alive &= erased < highs - lows
        alive_idx = np.nonzero(alive)[0]
        if len(alive_idx) == 0:
            return 0
        if with_scores:
            witness = np.empty((len(columns), len(alive_idx)),
                               dtype=np.float64)
            for t, column in enumerate(columns):
                lows, highs = run_bounds[t]
                a_lows = lows[alive_idx]
                counts = (highs - lows)[alive_idx]
                offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
                total = int(offsets[-1] + counts[-1])
                # Concatenated positions of every surviving run: for run
                # j the slots offsets[j]:offsets[j]+counts[j] hold
                # a_lows[j] .. a_lows[j]+counts[j]-1.
                flat = np.repeat(a_lows - offsets, counts) + np.arange(total)
                ordinals = column.seq_idx[flat]
                p = postings[t]
                damped = (p.scores[ordinals]
                          * damping_base ** (p.lengths[ordinals] - level))
                free = erasers[t].free_mask(ordinals)
                witness[t] = np.maximum.reduceat(
                    np.where(free, damped, -np.inf), offsets)
        emitted = 0
        for out, j in enumerate(alive_idx):
            node = self.index.node_at(level, int(joined[j]))
            if with_scores:
                ordered = tuple(float(witness[slot, out])
                                for slot in caller_slot)
                score = self.ranking.score_result(ordered)
            else:
                ordered = tuple(0.0 for _ in caller_slot)
                score = 0.0
            results.append(SearchResult(node, level, score, ordered))
            emitted += 1
        stats.results_emitted += emitted
        return emitted

    def _check_candidate(self, number: int, level: int, j: int,
                         postings: List[ColumnarPostings], columns,
                         run_bounds, erasers, semantics: str,
                         with_scores: bool, caller_slot: List[int],
                         damping_base: float) -> Optional[SearchResult]:
        """Apply the ELCA/SLCA test to one joined number."""
        witness: List[float] = [0.0] * len(postings)
        for t, column in enumerate(columns):
            a = int(run_bounds[t][0][j])
            b = int(run_bounds[t][1][j])
            ordinals = column.seq_idx[a:b]
            lo, hi = int(ordinals[0]), int(ordinals[-1]) + 1
            erased = erasers[t].erased_count(lo, hi)
            if semantics == SLCA:
                if erased:
                    return None
                free_ordinals = ordinals
            else:
                if erased >= b - a:
                    return None  # no free witness for this keyword
                if erased:
                    mask = erasers[t].free_mask(ordinals)
                    free_ordinals = ordinals[mask]
                else:
                    free_ordinals = ordinals
            if with_scores:
                p = postings[t]
                damped = (p.scores[free_ordinals]
                          * damping_base
                          ** (p.lengths[free_ordinals] - level))
                witness[t] = float(damped.max())
        node = self.index.node_at(level, number)
        ordered = tuple(witness[slot] for slot in caller_slot)
        score = self.ranking.score_result(ordered) if with_scores else 0.0
        return SearchResult(node, level, score, ordered)


def search(index: ColumnarIndex, terms: Sequence[str],
           semantics: str = ELCA, planner: Optional[JoinPlanner] = None,
           eraser_mode: str = "auto") -> List[SearchResult]:
    """One-shot convenience wrapper around `JoinBasedSearch.evaluate`."""
    engine = JoinBasedSearch(index, planner, eraser_mode)
    results, _stats = engine.evaluate(terms, semantics)
    return results
