"""Query plan inspection: what the join-based engine did, per level.

The paper's dynamic optimization (section III-C) chooses a join
algorithm per level from run-time sizes -- "keyword correlation is a
concept bound to specific contexts".  `explain` exposes those decisions:
per-level column and distinct sizes, the cardinality estimate, which
joins ran as merges and which as probes, how many numbers joined and how
many survived the semantic pruning.

::

    plan = explain(db.columnar_index, ["xml", "data"], semantics="elca")
    print(plan.format())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from ..index.columnar import ColumnarIndex
from ..obs.tracing import Span, render_trace
from ..planner.cardinality import CardinalityEstimator
from ..planner.plans import JoinPlanner
from .base import ELCA, ExecutionStats, check_semantics
from .join_based import JoinBasedSearch

if TYPE_CHECKING:  # import cycle: obs.audit -> planner -> algorithms
    from ..obs.audit import PlanAudit


@dataclass
class LevelPlan:
    """What happened at one tree level."""

    level: int
    column_sizes: Tuple[int, ...]
    distinct_sizes: Tuple[int, ...]
    estimate: float
    join_algorithms: Tuple[str, ...]
    joined: int
    emitted: int

    def format(self) -> str:
        joins = "+".join(self.join_algorithms) or "-"
        return (f"level {self.level}: columns={list(self.column_sizes)} "
                f"distinct={list(self.distinct_sizes)} "
                f"est={self.estimate:.1f} joins=[{joins}] "
                f"joined={self.joined} results={self.emitted}")


@dataclass
class QueryPlan:
    """Full per-level trace of one evaluation."""

    terms: Tuple[str, ...]
    execution_order: Tuple[str, ...]
    semantics: str
    levels: List[LevelPlan] = field(default_factory=list)
    stats: Optional[ExecutionStats] = None
    n_results: int = 0
    trace: Optional[Span] = None
    audit: Optional["PlanAudit"] = None  # EXPLAIN ANALYZE verdict

    def format(self) -> str:
        lines = [
            f"query: {' '.join(self.terms)} [{self.semantics}]",
            f"execution order (shortest list first): "
            f"{' -> '.join(self.execution_order)}",
        ]
        lines.extend(lp.format() for lp in self.levels)
        if self.stats is not None:
            lines.append(
                f"totals: {self.n_results} results, "
                f"{self.stats.merge_joins} merge joins, "
                f"{self.stats.index_joins} index joins, "
                f"{self.stats.tuples_scanned} tuples scanned, "
                f"{self.stats.lookups} probes, "
                f"{self.stats.erasures} sequences erased")
        if self.audit is not None:
            lines.append("analyze:")
            lines.extend(f"  {line}"
                         for line in self.audit.format().splitlines())
        if self.trace is not None:
            lines.append("trace:")
            lines.append(render_trace(self.trace))
        return "\n".join(lines)

    @property
    def join_mix(self) -> Tuple[int, int]:
        """(merge_joins, index_joins) across all levels."""
        merges = sum(1 for lp in self.levels
                     for a in lp.join_algorithms if a == "merge")
        probes = sum(1 for lp in self.levels
                     for a in lp.join_algorithms if a == "index")
        return merges, probes


def explain(index: ColumnarIndex, terms: Sequence[str],
            semantics: str = ELCA,
            planner: Optional[JoinPlanner] = None,
            tracer=None, analyze: bool = False, shadow: str = "off",
            estimator: Optional[CardinalityEstimator] = None,
            seed: int = 0) -> QueryPlan:
    """Evaluate `terms` and return the per-level `QueryPlan`.

    Runs the real engine (the plan reflects actual run-time decisions,
    not estimates alone).  With a live ``tracer``, the evaluation's span
    tree is recorded and attached as ``plan.trace`` -- its per-level
    ``plan`` tags match ``stats.per_level_plan`` exactly.

    ``analyze=True`` is EXPLAIN ANALYZE: the run is audited by
    `repro.obs.audit.PlanAuditor` and ``plan.audit`` carries the
    per-level predicted vs. actual cardinality, q-error and regret
    verdict.  ``shadow`` ("off"/"sampled"/"all") additionally executes
    the join algorithm the planner did *not* pick, for measured rather
    than modeled regret.  ``estimator`` overrides the audited
    cardinality model (e.g. ``CardinalityEstimator(sample_size=0)`` to
    inspect the pure containment formula).
    """
    check_semantics(semantics)
    terms = list(terms)
    auditor = None
    if analyze:
        from ..obs.audit import PlanAuditor

        auditor = PlanAuditor(planner, estimator, shadow=shadow,
                              seed=seed)
        planner = auditor.planner
    engine = JoinBasedSearch(index, planner, tracer=tracer)
    display_estimator = (estimator if estimator is not None
                         else CardinalityEstimator())
    ordered = index.query_postings(terms)
    plan = QueryPlan(terms=tuple(terms),
                     execution_order=tuple(p.term for p in ordered),
                     semantics=semantics)

    def observer(level, columns, joined, emitted):
        if auditor is not None:
            auditor.observer(level, columns, joined, emitted)
        plan.levels.append(LevelPlan(
            level=level,
            column_sizes=tuple(len(c) for c in columns),
            distinct_sizes=tuple(c.n_distinct for c in columns),
            estimate=display_estimator.estimate(
                [c.distinct for c in columns]),
            join_algorithms=(),  # filled from the stats trace below
            joined=len(joined),
            emitted=emitted,
        ))

    if tracer is not None and tracer.enabled:
        with tracer.span("query", op="explain", terms=list(terms),
                         semantics=semantics):
            results, stats = engine.evaluate(terms, semantics,
                                             with_scores=False,
                                             observer=observer)
        plan.trace = tracer.last_root()
    else:
        results, stats = engine.evaluate(terms, semantics, with_scores=False,
                                         observer=observer)
    # The planner tags each pairwise join with its level; attach them.
    for level_plan in plan.levels:
        level_plan.join_algorithms = tuple(
            algorithm for level, algorithm in stats.per_level_plan
            if level == level_plan.level)
    if auditor is not None:
        plan.audit = auditor.finish(terms, semantics)
        stats.audit = plan.audit
    plan.stats = stats
    plan.n_results = len(results)
    return plan
