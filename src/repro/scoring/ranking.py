"""Ranking model for XML keyword search (paper section II-B).

Each node directly containing a keyword is treated as a small "document"
and receives a *local score* ``g(v, w)``.  When the occurrence is
propagated up to its ELCA/SLCA at vertical distance ``delta``, the local
score is damped by a decreasing function ``d(delta)``; the result's
global score aggregates the per-keyword damped scores with a monotone
combining function ``F`` (sum by default).  If a result contains several
occurrences of the same keyword, only the best damped occurrence counts.

The algorithms only rely on monotonicity, so both the local scorer and
the combiner are pluggable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Protocol, Sequence


class LocalScorer(Protocol):
    """Assigns ``g(v, w)`` given the occurrence statistics."""

    def score(self, tf: int, df: int, n_docs: int, node_tokens: int) -> float:
        """Local score of a node for one term.

        Parameters
        ----------
        tf:
            Term frequency inside the node's own text.
        df:
            Number of nodes directly containing the term.
        n_docs:
            Number of text-bearing nodes in the corpus.
        node_tokens:
            Total tokens in the node's own text (for length normalization).
        """
        ...


class TfIdfScorer:
    """The default ``g``: log-damped tf times idf, length-normalized.

    ``g = (1 + ln tf) * ln(1 + N/df) / sqrt(node_tokens)``.  Any positive
    monotone-in-tf/idf function works; this one keeps scores in a narrow
    positive range so damping behaves like the paper's Figure 6 example.
    """

    def score(self, tf: int, df: int, n_docs: int, node_tokens: int) -> float:
        if tf <= 0 or df <= 0:
            return 0.0
        tf_part = 1.0 + math.log(tf)
        idf_part = math.log(1.0 + n_docs / df)
        norm = math.sqrt(max(node_tokens, 1))
        return tf_part * idf_part / norm


class ConstantScorer:
    """``g = constant`` -- useful for tests where only damping matters."""

    def __init__(self, value: float = 1.0):
        self.value = value

    def score(self, tf: int, df: int, n_docs: int, node_tokens: int) -> float:
        return self.value if tf > 0 else 0.0


class DampingFunction:
    """``d(delta) = base ** delta`` with ``0 < base <= 1``.

    The paper's running example uses ``base = 0.9``; ``base = 1`` turns
    damping off (pure local-score ranking).
    """

    def __init__(self, base: float = 0.9):
        if not 0.0 < base <= 1.0:
            raise ValueError("damping base must be in (0, 1]")
        self.base = base

    def __call__(self, delta: int) -> float:
        if delta < 0:
            raise ValueError("vertical distance cannot be negative")
        return self.base ** delta


class Combiner(Protocol):
    """Monotone aggregation ``F`` over per-keyword damped scores."""

    def combine(self, damped_scores: Sequence[float]) -> float:
        ...

    def upper_bound(self, per_keyword_bounds: Sequence[float]) -> float:
        """Monotone bound: F applied to per-keyword upper bounds."""
        ...


class SumCombiner:
    """``F = sum`` -- the paper's running choice; trivially monotone."""

    def combine(self, damped_scores: Sequence[float]) -> float:
        return float(sum(damped_scores))

    def upper_bound(self, per_keyword_bounds: Sequence[float]) -> float:
        return float(sum(per_keyword_bounds))


class MaxCombiner:
    """``F = max`` -- a monotone alternative; a result is as good as its
    best keyword match.  Supported by every algorithm, including the
    top-K path (the star-join bounds fold with max instead of sum)."""

    def combine(self, damped_scores: Sequence[float]) -> float:
        return float(max(damped_scores)) if damped_scores else 0.0

    def upper_bound(self, per_keyword_bounds: Sequence[float]) -> float:
        return self.combine(per_keyword_bounds)


class WeightedSumCombiner:
    """``F = sum_i w_i * x_i`` with non-negative per-keyword weights.

    Weights are positional: weight ``i`` applies to the i-th *query*
    term.  Monotone whenever every weight is >= 0.
    """

    def __init__(self, weights: Sequence[float]):
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative for "
                             "monotonicity")
        self.weights = tuple(float(w) for w in weights)

    def combine(self, damped_scores: Sequence[float]) -> float:
        if len(damped_scores) != len(self.weights):
            raise ValueError(
                f"{len(self.weights)} weights for "
                f"{len(damped_scores)} keyword scores")
        return float(sum(w * s for w, s in zip(self.weights,
                                               damped_scores)))

    def upper_bound(self, per_keyword_bounds: Sequence[float]) -> float:
        return self.combine(per_keyword_bounds)


class RankingModel:
    """Bundles the local scorer, the damping function and the combiner."""

    def __init__(self, scorer: LocalScorer | None = None,
                 damping: DampingFunction | None = None,
                 combiner: Combiner | None = None):
        self.scorer = scorer if scorer is not None else TfIdfScorer()
        self.damping = damping if damping is not None else DampingFunction()
        self.combiner = combiner if combiner is not None else SumCombiner()

    def damped(self, local_score: float, occurrence_level: int,
               result_level: int) -> float:
        """Score of one occurrence as seen from a result at `result_level`."""
        if result_level > occurrence_level:
            raise ValueError("a result cannot be below its occurrence")
        return local_score * self.damping(occurrence_level - result_level)

    def score_result(self, best_damped_per_keyword: Sequence[float]) -> float:
        """Global score from the best damped occurrence of each keyword."""
        return self.combiner.combine(best_damped_per_keyword)


def best_per_keyword(occurrences: Dict[int, List[float]]) -> List[float]:
    """Max damped score per keyword index (helper for scoring a result)."""
    return [max(scores) for _, scores in sorted(occurrences.items())]
