"""Ranking functions: local scores, damping, monotone aggregation."""

from .ranking import (Combiner, ConstantScorer, DampingFunction, LocalScorer,
                      MaxCombiner, RankingModel, SumCombiner, TfIdfScorer,
                      WeightedSumCombiner)

__all__ = [
    "Combiner",
    "ConstantScorer",
    "DampingFunction",
    "LocalScorer",
    "MaxCombiner",
    "RankingModel",
    "SumCombiner",
    "TfIdfScorer",
    "WeightedSumCombiner",
]
