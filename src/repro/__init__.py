"""repro -- a reproduction of "Supporting Top-K Keyword Search in XML
Databases" (Chen & Papakonstantinou, ICDE 2010).

The package implements the paper's join-based ELCA/SLCA algorithms over
a column-oriented JDewey index, the join-based top-K algorithm with the
tightened star-join bound, and the three baselines it is evaluated
against (stack-based, index-based, RDIL), together with synthetic
DBLP/XMark data generators and the benchmark harness that regenerates
the paper's tables and figures.

Quickstart::

    from repro import XMLDatabase

    db = XMLDatabase.generate_dblp(seed=7, n_papers=500)
    results = db.search("database query", semantics="elca")
    top = db.search_topk("database query", k=5)
"""

from .api import ALGORITHMS, TOPK_ALGORITHMS, BatchResult, Query, XMLDatabase
from .algorithms.base import (ELCA, SLCA, ExecutionStats, SearchResult,
                              TopKResult)
from .cache import CacheStats, LRUCache, QueryCache
from .obs import (MetricsRegistry, NullTracer, SlowQueryLog, Tracer,
                  get_registry, render_trace, spans_per_level_plan,
                  trace_to_jsonl)
from .reliability import (DatabaseCorruptError, DatabaseFormatError,
                          Deadline, DeadlineExceeded, FaultInjector,
                          InjectedFault, QueryBudget, RetryExhaustedError,
                          RetryPolicy)
from .xmltree import (Node, XMLTree, build_tree, parse_xml, parse_xml_file)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "TOPK_ALGORITHMS",
    "Query",
    "XMLDatabase",
    "ELCA",
    "SLCA",
    "ExecutionStats",
    "SearchResult",
    "TopKResult",
    "BatchResult",
    "CacheStats",
    "LRUCache",
    "QueryCache",
    "MetricsRegistry",
    "NullTracer",
    "SlowQueryLog",
    "Tracer",
    "get_registry",
    "render_trace",
    "spans_per_level_plan",
    "trace_to_jsonl",
    "DatabaseCorruptError",
    "DatabaseFormatError",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "InjectedFault",
    "QueryBudget",
    "RetryExhaustedError",
    "RetryPolicy",
    "Node",
    "XMLTree",
    "build_tree",
    "parse_xml",
    "parse_xml_file",
    "__version__",
]
