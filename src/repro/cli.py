"""Command-line interface.

::

    python -m repro index bib.xml mydb/           # build + save a database
    python -m repro generate dblp mydb/ --papers 5000
    python -m repro search mydb/ "xml data" --semantics slca
    python -m repro topk mydb/ "xml keyword search" -k 10
    python -m repro serve-batch mydb/ queries.txt --processes 4 -k 10
    python -m repro index bib.xml mydb/ --shards 4   # sharded store
    python -m repro serve mydb/ --workers 2          # HTTP daemon
    python -m repro serve mydb/ --capture workload.jsonl
    python -m repro replay workload.jsonl mydb/ --fail-on-mismatch
    python -m repro doctor mydb/ --check
    python -m repro chaos mydb/ --spec kill=0.05,latency=0.2
    python -m repro info mydb/
    python -m repro trace mydb/ "xml data" --out trace.jsonl
    python -m repro trace --from-log access.jsonl --trace-id abc123
    python -m repro slo http://127.0.0.1:8388     # or: slo access.jsonl
    python -m repro audit mydb/ "xml data" --shadow sampled
    python -m repro metrics mydb/ --query "xml data" --prometheus
    python -m repro regress --append BENCH_hotpath.json --check
    python -m repro bench --small

`search`/`topk`/`info` accept either a saved database directory or a
raw XML file (indexed on the fly).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .api import ALGORITHMS, TOPK_ALGORITHMS, XMLDatabase
from .algorithms.base import SearchResult
from .reliability.errors import DatabaseFormatError, DeadlineExceeded

# Distinct exit codes so scripts can branch without parsing stderr:
# 1 = generic error, 2 = argparse usage (argparse's own convention),
# 3 = database directory / input file missing, 4 = database corrupt or
# format-incompatible, 5 = query deadline exceeded.
EXIT_MISSING = 3
EXIT_CORRUPT = 4
EXIT_DEADLINE = 5


def _load(path: str) -> XMLDatabase:
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no such database directory or XML file: {path}")
    if os.path.isdir(path):
        from .diskdb import load_database

        return load_database(path)
    from .xmltree.parser import parse_xml_file

    return XMLDatabase.from_tree(parse_xml_file(path))


def _budget_kwargs(args: argparse.Namespace) -> dict:
    """Deadline kwargs for db.search/search_topk from --timeout-ms/--partial."""
    if getattr(args, "timeout_ms", None) is None:
        return {}
    return {"timeout_ms": args.timeout_ms,
            "on_deadline": "partial" if args.partial else "raise"}


def _print_results(results: List[SearchResult], limit: Optional[int],
                   elapsed_ms: float) -> None:
    shown = results if limit is None else results[:limit]
    for rank, r in enumerate(shown, start=1):
        path = ".".join(map(str, r.node.dewey))
        snippet = r.node.subtree_text()[:60]
        print(f"{rank:>3}. <{r.node.tag}> {path}  score={r.score:.4f}  "
              f"{snippet}")
    extra = len(results) - len(shown)
    if extra > 0:
        print(f"     ... and {extra} more")
    print(f"({len(results)} results in {elapsed_ms:.1f} ms)")


def cmd_search(args: argparse.Namespace) -> int:
    db = _load(args.database)
    start = time.perf_counter()
    results, stats = db.search(args.query, semantics=args.semantics,
                               algorithm=args.algorithm, with_stats=True,
                               **_budget_kwargs(args))
    elapsed = (time.perf_counter() - start) * 1000
    _print_results(results, args.limit, elapsed)
    if stats is not None and stats.partial:
        print(f"(partial: {args.timeout_ms:g} ms budget expired with "
              f"{stats.levels_skipped} levels unprocessed)")
    return 0


def cmd_topk(args: argparse.Namespace) -> int:
    db = _load(args.database)
    start = time.perf_counter()
    result = db.search_topk(args.query, args.k, semantics=args.semantics,
                            algorithm=args.algorithm,
                            **_budget_kwargs(args))
    elapsed = (time.perf_counter() - start) * 1000
    _print_results(list(result), None, elapsed)
    if result.partial:
        gap = ("unknown" if result.bound is None
               else f"{result.bound:.4f}")
        print(f"(partial: budget expired; unreturned results score "
              f"<= {gap})")
    elif result.terminated_early:
        print("(terminated early)")
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    from .xmltree.parser import parse_xml_file

    db = XMLDatabase.from_tree(parse_xml_file(args.xml_file))
    db.columnar_index
    db.inverted_index
    if args.shards:
        shard_fmt = args.format_version if args.format_version in (3, 4) \
            else 3
        db.save(args.output, shards=args.shards,
                format_version=shard_fmt)
        print(f"indexed {len(db)} nodes "
              f"({len(db.inverted_index.vocabulary)} terms) -> "
              f"{args.output} ({args.shards} shards, "
              f"format v{shard_fmt})")
        return 0
    db.save(args.output, format_version=args.format_version)
    print(f"indexed {len(db)} nodes "
          f"({len(db.inverted_index.vocabulary)} terms) -> {args.output} "
          f"(format v{args.format_version})")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.corpus == "dblp":
        db = XMLDatabase.generate_dblp(seed=args.seed,
                                       n_papers=args.papers)
    else:
        db = XMLDatabase.generate_xmark(seed=args.seed, scale=args.scale)
    db.columnar_index
    db.inverted_index
    if args.shards:
        shard_fmt = args.format_version if args.format_version in (3, 4) \
            else 3
        db.save(args.output, shards=args.shards,
                format_version=shard_fmt)
        print(f"generated {args.corpus}: {len(db)} nodes -> {args.output} "
              f"({args.shards} shards, format v{shard_fmt})")
        return 0
    db.save(args.output, format_version=args.format_version)
    print(f"generated {args.corpus}: {len(db)} nodes -> {args.output} "
          f"(format v{args.format_version})")
    return 0


def cmd_serve_batch(args: argparse.Namespace) -> int:
    """Evaluate a query workload as one `search_batch` call.

    The database loads in the lazy, mmap-backed mode when it is a
    saved directory (format v3 then serves columns zero-copy and the
    forked workers of ``--processes`` share the mapping); ``--eager``
    opts back into the fully materialized load.
    """
    if args.queries == "-":
        lines = sys.stdin.readlines()
    else:
        if not os.path.exists(args.queries):
            raise FileNotFoundError(f"no such query file: {args.queries}")
        with open(args.queries, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    queries = [line.strip() for line in lines
               if line.strip() and not line.lstrip().startswith("#")]
    if not queries:
        print("error: no queries in the workload", file=sys.stderr)
        return 1
    if os.path.isdir(args.database):
        from .diskdb import load_database

        db = load_database(args.database, lazy=not args.eager,
                           verify="eager" if args.eager else "lazy")
    else:
        db = _load(args.database)
    batch = db.search_batch(queries, k=args.k, semantics=args.semantics,
                            algorithm=args.algorithm,
                            threads=args.threads,
                            processes=args.processes,
                            use_cache=not args.no_cache,
                            **_budget_kwargs(args))
    if not args.quiet:
        for index, (query, entry) in enumerate(zip(queries, batch)):
            if index in batch.errors:
                print(f"{index:>4}. ERROR {batch.errors[index]}  {query}")
            else:
                print(f"{index:>4}. {len(entry):>5} results  "
                      f"{batch.latencies_ms[index]:>8.2f} ms  {query}")
    mode = (f"processes={args.processes}" if args.processes
            else f"threads={args.threads}" if args.threads
            else "inline")
    qps = len(queries) / (batch.elapsed_ms / 1000.0) \
        if batch.elapsed_ms > 0 else float("inf")
    print(f"batch: {len(queries)} queries in {batch.elapsed_ms:.1f} ms "
          f"({qps:.1f} qps, {mode}), {len(batch.errors)} errors")
    s = batch.summary
    print(f"work: levels={s.levels_processed} joins={s.joins} "
          f"tuples={s.tuples_scanned} cache_hits={s.cache_hits} "
          f"cache_misses={s.cache_misses}")
    # Exit-code consistency across verbs: `search`/`topk` map an
    # exceeded budget to EXIT_DEADLINE via the raised exception; batch
    # isolation catches those per query, so surface them here.
    if any(isinstance(exc, DeadlineExceeded)
           for exc in batch.errors.values()):
        return EXIT_DEADLINE
    return 1 if (batch.errors and args.fail_on_error) else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived scatter-gather query daemon.

    A directory saved with ``--shards`` loads straight into a
    `ShardedDatabase`; an unsharded database (or raw XML file) is
    re-partitioned in memory when ``--shards`` is given, else served
    as a single shard.
    """
    from .serve import ShardedDatabase, serve

    if os.path.isdir(args.database):
        from .diskdb import load_database

        db = load_database(args.database, lazy=not args.eager,
                           verify="eager" if args.eager else "lazy")
    else:
        db = _load(args.database)
    if isinstance(db, ShardedDatabase):
        if args.shards and args.shards != db.n_shards:
            print(f"error: database is saved with {db.n_shards} shards; "
                  f"re-shard with `repro index --shards {args.shards}`",
                  file=sys.stderr)
            return 1
    else:
        db = ShardedDatabase.from_database(db, args.shards or 1)
    from .obs import SLOConfig
    from .serve import BreakerConfig, ChaosInjector

    chaos = None
    if args.chaos:
        if args.workers < 1:
            print("error: --chaos needs --workers >= 1 (faults are "
                  "injected into shard worker processes)",
                  file=sys.stderr)
            return 1
        chaos = ChaosInjector.from_spec(args.chaos)
    serve(db, host=args.host, port=args.port, workers=args.workers,
          max_concurrency=args.max_concurrency,
          queue_limit=args.queue_limit,
          default_timeout_ms=args.timeout_ms,
          default_partial=args.partial,
          result_cache_size=args.result_cache_size,
          tracing=not args.no_tracing,
          access_log_path=args.access_log,
          trace_log_path=args.trace_log,
          slow_ms=args.slow_ms,
          tail_slow_ms=args.tail_slow_ms,
          tail_sample_rate=args.tail_sample_rate,
          slo_config=SLOConfig(
              availability_target=args.slo_availability,
              latency_target_ms=args.slo_latency_ms),
          retry_attempts=args.retry_attempts,
          hedge_ms=args.hedge_ms,
          breaker=BreakerConfig(
              consecutive_failures=args.breaker_failures,
              open_ms=args.breaker_open_ms),
          drain_grace_ms=args.drain_grace_ms,
          supervision=not args.no_supervision,
          chaos=chaos,
          capture_path=args.capture)
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    """Index analytics for a saved database directory."""
    from .obs.doctor import main as doctor_main

    if not os.path.isdir(args.database):
        raise FileNotFoundError(
            f"no such database directory: {args.database} "
            "(repro doctor reads saved directories, not raw XML)")
    argv = [args.database, "--heavy", str(args.heavy)]
    if args.workload:
        argv += ["--workload", args.workload]
    if args.no_codecs:
        argv.append("--no-codecs")
    if args.json:
        argv.append("--json")
    if args.out:
        argv += ["--out", args.out]
    if args.check:
        argv += ["--check",
                 "--max-shard-byte-skew", str(args.max_shard_byte_skew)]
        if args.max_shard_term_skew is not None:
            argv += ["--max-shard-term-skew",
                     str(args.max_shard_term_skew)]
        if args.max_term_share is not None:
            argv += ["--max-term-share", str(args.max_term_share)]
    return doctor_main(argv)


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-drive a captured workload and diff the outcome."""
    from .bench.replay import main as replay_main

    for path in (args.workload, args.database):
        if not os.path.exists(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
    argv = [args.workload, args.database, "--mode", args.mode,
            "--speed", str(args.speed), "--history", args.history]
    if args.limit is not None:
        argv += ["--limit", str(args.limit)]
    if args.against:
        argv += ["--against", args.against]
    if args.out:
        argv += ["--out", args.out]
    if args.json:
        argv.append("--json")
    if args.append:
        argv.append("--append")
    if args.fail_on_mismatch:
        argv.append("--fail-on-mismatch")
    return replay_main(argv)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos drive: boot a fault-injected daemon, hammer it,
    wait for it to heal, and grade the run against the self-healing
    invariants (availability, bounded degraded responses, deadline
    ceiling, every killed pool rebuilt).  Exit 1 on any violation.
    """
    import json

    from .serve import (ChaosInjector, ShardedDatabase,
                        format_chaos_report, run_chaos_drive,
                        sample_queries)

    if args.workers < 1:
        print("error: chaos needs --workers >= 1 (faults are injected "
              "into shard worker processes)", file=sys.stderr)
        return 1
    if os.path.isdir(args.database):
        from .diskdb import load_database

        db = load_database(args.database, lazy=True, verify="lazy")
    else:
        db = _load(args.database)
    if not isinstance(db, ShardedDatabase):
        db = ShardedDatabase.from_database(db, args.shards or 2)
    spec = args.spec
    if args.seed is not None:
        parts = [p for p in spec.split(",")
                 if p.strip() and not p.strip().startswith("seed=")]
        spec = ",".join(parts + [f"seed={args.seed}"])
    chaos = ChaosInjector.from_spec(spec)
    queries = sample_queries(db, seed=chaos.seed)
    report = run_chaos_drive(
        db, chaos, queries, workers=args.workers, k=args.k,
        requests=args.requests, clients=args.clients,
        timeout_ms=args.timeout_ms,
        availability_target=args.availability_target)
    print(format_chaos_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    return 0 if report["ok"] else 1


def _print_format_info(path: str) -> None:
    """Container format version + per-codec column mix, read straight
    from the on-disk containers (v3/v4; earlier formats report only
    their version)."""
    import json

    meta_path = os.path.join(path, "meta.json")
    if not os.path.exists(meta_path):
        return
    with open(meta_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    version = meta.get("format_version")
    print(f"format:      v{version}")
    if version not in (3, 4):
        return
    from .index.storage import parse_v3_payload, parse_v4_payload
    from .obs.doctor import _scan_columnar, _shard_dirs

    mix: dict = {}
    keepalive = []
    for _label, shard_dir in _shard_dirs(path, meta):
        columnar = os.path.join(shard_dir, "columnar.bin")
        if not os.path.exists(columnar):
            continue
        fmt, _algorithm, data, refs, mapped = _scan_columnar(columnar)
        keepalive.append(mapped)
        parse = parse_v4_payload if fmt == "v4" else parse_v3_payload
        for ref in refs:
            payload = data[ref.offset: ref.offset + ref.length]
            _lengths, _scores, level_payloads = parse(ref.term, payload)
            for scheme, _column in level_payloads:
                mix[scheme] = mix.get(scheme, 0) + 1
    if mix:
        total = sum(mix.values())
        parts = ", ".join(
            f"{codec} {count} ({count / total:.0%})"
            for codec, count in sorted(mix.items(),
                                       key=lambda kv: (-kv[1], kv[0])))
        print(f"codecs:      {parts}")


def cmd_info(args: argparse.Namespace) -> int:
    db = _load(args.database)
    from .serve import ShardedDatabase

    if os.path.isdir(args.database):
        _print_format_info(args.database)
    if isinstance(db, ShardedDatabase):
        print(f"nodes:       {len(db)}")
        print(f"shards:      {db.n_shards} (strategy: "
              f"{(db.manifest or {}).get('strategy', 'root-child-mod')})")
        dirs = (db.manifest or {}).get("dirs") or []
        for sid, shard in enumerate(db.shards):
            idx = shard.columnar_index
            vocab = len(idx.vocabulary)
            postings = sum(len(idx.term_postings(t))
                           for t in idx.vocabulary)
            line = (f"  shard {sid:>2}:  {vocab} terms, "
                    f"{postings} postings")
            if sid < len(dirs) and os.path.isdir(args.database):
                shard_dir = os.path.join(args.database, dirs[sid])
                nbytes = sum(
                    os.path.getsize(os.path.join(shard_dir, name))
                    for name in ("columnar.bin", "dewey.bin")
                    if os.path.exists(os.path.join(shard_dir, name)))
                line += f", {nbytes / 1024:.1f} KiB on disk"
            print(line)
        return 0
    inv = db.inverted_index
    print(f"nodes:       {len(db)}")
    print(f"depth:       {db.tree.depth}")
    print(f"text nodes:  {inv.n_docs}")
    print(f"vocabulary:  {len(inv.vocabulary)} terms")
    postings = sum(len(inv.term_list(t)) for t in inv.vocabulary)
    print(f"postings:    {postings}")
    from .index import storage

    report = storage.measure_sizes(db.columnar_index, inv)
    for name, size in report.as_rows():
        print(f"{name + ':':<20}{size / 1024:>10.1f} KiB")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    db = _load(args.database)
    plan = db.explain(args.query, semantics=args.semantics,
                      trace=args.trace, analyze=args.analyze,
                      shadow=args.shadow)
    print(plan.format())
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """EXPLAIN ANALYZE: audit the section III-C plan of one query."""
    import json

    from .api import Query
    from .obs.audit import audit_query
    from .planner.cardinality import CardinalityEstimator
    from .planner.plans import JoinPlanner

    db = _load(args.database)
    terms = Query(args.query, db.tokenizer).terms
    planner = (JoinPlanner(args.policy) if args.policy != "dynamic"
               else None)
    estimator = (CardinalityEstimator(sample_size=args.sample_size)
                 if args.sample_size is not None else None)
    audit = audit_query(db.columnar_index, terms,
                        semantics=args.semantics, planner=planner,
                        estimator=estimator, shadow=args.shadow)
    if args.json:
        print(audit.to_json(indent=2))
    else:
        print(audit.format())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(audit.to_json(indent=2) + "\n")
        print(f"audit written to {args.out}")
    if args.fail_on_misprediction and audit.mispredicted_levels:
        return 1
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Dump the live metrics registry (Prometheus exposition by
    default).  With ``--query`` the given queries run first, so the
    dump reflects actual serving work rather than an empty registry."""
    import json

    from .obs import get_registry

    if args.database is not None:
        db = _load(args.database)
        registry = db.metrics
        for query in args.query or []:
            if args.k is not None:
                db.search_topk(query, args.k, semantics=args.semantics)
            else:
                db.search(query, semantics=args.semantics)
    else:
        registry = get_registry()
    if args.json:
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    else:
        print(registry.render_prometheus(), end="")
    return 0


def cmd_regress(args: argparse.Namespace) -> int:
    from .bench.regress import main as regress_main

    argv = ["--history", args.history,
            "--threshold", str(args.threshold),
            "--window", str(args.window),
            "--min-history", str(args.min_history)]
    if args.append:
        argv += ["--append", args.append]
    if args.check:
        argv.append("--check")
    return regress_main(argv)


def _trace_from_log(path: str, trace_id: Optional[str]) -> int:
    """Render daemon trace/access JSONL: stitched traces as span trees,
    access-log entries as one-line summaries."""
    from .obs import format_access_record, read_jsonl, render_stitched

    if not os.path.exists(path):
        print(f"error: no such log file: {path}", file=sys.stderr)
        return EXIT_MISSING
    matched = 0
    for entry in read_jsonl(path):
        if trace_id is not None and entry.get("trace_id") != trace_id:
            continue
        if "root" in entry:  # stitched trace line (--trace-log)
            if matched:
                print()
            print(render_stitched(entry))
            matched += 1
        elif "status" in entry:  # access-log record (--access-log)
            print(format_access_record(entry))
            matched += 1
    if not matched:
        what = (f"trace {trace_id}" if trace_id is not None
                else "traces or access-log records")
        print(f"no {what} found in {path}", file=sys.stderr)
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import Tracer, render_trace, trace_to_jsonl

    if args.from_log is not None:
        return _trace_from_log(args.from_log, args.trace_id)
    if args.trace_id is not None:
        print("error: --trace-id needs --from-log FILE (a daemon "
              "access/trace JSONL)", file=sys.stderr)
        return 2
    if args.database is None or args.query is None:
        print("error: database and query are required unless reading a "
              "log with --from-log", file=sys.stderr)
        return 2
    db = _load(args.database)
    tracer = Tracer()
    db.tracer = tracer
    if args.slow_ms is not None:
        from .obs import SlowQueryLog

        db.slow_log = SlowQueryLog(threshold_ms=args.slow_ms)
    start = time.perf_counter()
    if args.k is not None:
        results = list(db.search_topk(args.query, args.k,
                                      semantics=args.semantics))
    else:
        results = db.search(args.query, semantics=args.semantics,
                            use_cache=False)
    elapsed = (time.perf_counter() - start) * 1000
    root = tracer.last_root()
    print(render_trace(root))
    print(f"({len(results)} results in {elapsed:.1f} ms)")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(trace_to_jsonl(tracer.roots()))
        print(f"trace written to {args.out}")
    if args.metrics_out:
        import json

        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(db.metrics_snapshot(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"metrics snapshot written to {args.metrics_out}")
    if args.prometheus:
        print(db.metrics.render_prometheus(), end="")
    if db.slow_log is not None and len(db.slow_log):
        record = db.slow_log.records()[-1]
        print(f"slow query (>= {db.slow_log.threshold_ms:.0f} ms): "
              f"{' '.join(record.terms)} took {record.elapsed_ms:.1f} ms")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    """SLO report from a live daemon (URL) or an access log (JSONL)."""
    import json

    from .obs import (SLOConfig, format_slo_report, read_jsonl,
                      report_from_records)

    target = args.target
    if target.startswith(("http://", "https://")):
        import urllib.request

        url = target.rstrip("/")
        if not url.endswith("/slo"):
            url += "/slo"
        try:
            with urllib.request.urlopen(url, timeout=10) as resp:
                report = json.load(resp)
        except OSError as exc:
            print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
            return 1
    else:
        if not os.path.exists(target):
            print(f"error: no such access log: {target}", file=sys.stderr)
            return EXIT_MISSING
        config = SLOConfig(
            availability_target=args.availability_target,
            latency_target_ms=args.latency_target_ms,
            latency_target_ratio=args.latency_target_ratio)
        report = report_from_records(read_jsonl(target), config)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_slo_report(report))
    if args.fail_on_alert and report.get("alerts"):
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench.harness import BenchConfig, main as harness_main

    harness_main(BenchConfig.small() if args.small else None)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-K keyword search in XML databases (ICDE 2010 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("search", help="complete result set")
    p.add_argument("database", help="database directory or XML file")
    p.add_argument("query", help="keyword query, e.g. 'xml data'")
    p.add_argument("--semantics", choices=("elca", "slca"),
                   default="elca")
    p.add_argument("--algorithm", choices=ALGORITHMS, default="join")
    p.add_argument("--limit", type=int, default=20,
                   help="results to print (all are counted)")
    p.add_argument("--timeout-ms", type=float, default=None,
                   help="query budget in milliseconds")
    p.add_argument("--partial", action="store_true",
                   help="return partial results on an expired budget "
                        "instead of failing (exit 5)")
    p.set_defaults(fn=cmd_search)

    p = sub.add_parser("topk", help="top-K results, best first")
    p.add_argument("database", help="database directory or XML file")
    p.add_argument("query")
    p.add_argument("-k", type=int, default=10)
    p.add_argument("--semantics", choices=("elca", "slca"),
                   default="elca")
    p.add_argument("--algorithm", choices=TOPK_ALGORITHMS,
                   default="topk-join")
    p.add_argument("--timeout-ms", type=float, default=None,
                   help="query budget in milliseconds")
    p.add_argument("--partial", action="store_true",
                   help="return the proven prefix on an expired budget "
                        "instead of failing (exit 5)")
    p.set_defaults(fn=cmd_topk)

    p = sub.add_parser("index", help="index an XML file into a database")
    p.add_argument("xml_file")
    p.add_argument("output", help="database directory to create")
    p.add_argument("--format-version", type=int, choices=(1, 2, 3, 4),
                   default=2,
                   help="on-disk format: 2 = blocked+checksummed "
                        "(default), 3 = block-aligned zero-copy mmap, "
                        "4 = v3 layout with adaptive per-column codecs "
                        "(FOR/varint join rle/delta), 1 = legacy bare "
                        "blobs")
    p.add_argument("--shards", type=int, default=None,
                   help="partition the index into N subtree-affine "
                        "shards (format v3, or v4 with "
                        "--format-version 4; see docs/SERVING.md)")
    p.set_defaults(fn=cmd_index)

    p = sub.add_parser("generate",
                       help="generate a synthetic corpus database")
    p.add_argument("corpus", choices=("dblp", "xmark"))
    p.add_argument("output")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--papers", type=int, default=2000,
                   help="DBLP paper count")
    p.add_argument("--scale", type=float, default=0.01,
                   help="XMark scale factor")
    p.add_argument("--format-version", type=int, choices=(1, 2, 3, 4),
                   default=2,
                   help="on-disk format: 2 = blocked+checksummed "
                        "(default), 3 = block-aligned zero-copy mmap, "
                        "4 = v3 layout with adaptive per-column codecs "
                        "(FOR/varint join rle/delta), 1 = legacy bare "
                        "blobs")
    p.add_argument("--shards", type=int, default=None,
                   help="partition the index into N subtree-affine "
                        "shards (format v3, or v4 with "
                        "--format-version 4; see docs/SERVING.md)")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("serve-batch",
                       help="evaluate a query workload as one batch "
                            "(multi-process with --processes)")
    p.add_argument("database", help="database directory or XML file")
    p.add_argument("queries",
                   help="file with one query per line ('-' = stdin; "
                        "blank lines and #-comments skipped)")
    p.add_argument("-k", type=int, default=None,
                   help="run top-K evaluations instead of complete")
    p.add_argument("--semantics", choices=("elca", "slca"),
                   default="elca")
    p.add_argument("--algorithm", default=None,
                   help="override the per-mode default algorithm")
    p.add_argument("--processes", type=int, default=None,
                   help="fork-based worker processes (workers share "
                        "the mmap'd v3 store copy-on-write)")
    p.add_argument("--threads", type=int, default=None)
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the result cache")
    p.add_argument("--eager", action="store_true",
                   help="fully materialize the database at load "
                        "instead of the lazy mmap-backed mode")
    p.add_argument("--timeout-ms", type=float, default=None,
                   help="shared budget for the whole batch")
    p.add_argument("--partial", action="store_true",
                   help="partial results on an expired budget")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-query lines")
    p.add_argument("--fail-on-error", action="store_true",
                   help="exit 1 if any query in the batch failed")
    p.set_defaults(fn=cmd_serve_batch)

    p = sub.add_parser("serve",
                       help="long-lived sharded scatter-gather query "
                            "daemon (HTTP; see docs/SERVING.md)")
    p.add_argument("database", help="database directory or XML file")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8388,
                   help="listen port (0 = ephemeral, printed at start)")
    p.add_argument("--shards", type=int, default=None,
                   help="re-partition an unsharded database in memory; "
                        "sharded directories use their manifest")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes per shard (0 = evaluate "
                        "in-process on a thread)")
    p.add_argument("--max-concurrency", type=int, default=8,
                   help="queries evaluated at once; above this they "
                        "queue")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="queued queries before 429 queue_full shedding")
    p.add_argument("--timeout-ms", type=float, default=None,
                   help="default per-query budget when the request "
                        "carries none")
    p.add_argument("--partial", action="store_true",
                   help="default deadline policy: partial results "
                        "instead of 504")
    p.add_argument("--result-cache-size", type=int, default=1024,
                   help="daemon response cache entries (0 disables)")
    p.add_argument("--eager", action="store_true",
                   help="fully materialize the database at load "
                        "instead of the lazy mmap-backed mode")
    p.add_argument("--no-tracing", action="store_true",
                   help="disable distributed trace collection (access "
                        "log and SLO tracking stay on)")
    p.add_argument("--access-log", default=None, metavar="PATH",
                   help="append one JSONL record per request here")
    p.add_argument("--trace-log", default=None, metavar="PATH",
                   help="append retained stitched traces as JSONL here")
    p.add_argument("--slow-ms", type=float, default=None,
                   help="record served requests over this wall time in "
                        "the daemon slow-query log")
    p.add_argument("--tail-slow-ms", type=float, default=250.0,
                   help="tail sampling: always retain traces at or "
                        "above this latency")
    p.add_argument("--tail-sample-rate", type=float, default=1.0,
                   help="retention probability for fast, healthy "
                        "traces (outliers are always kept)")
    p.add_argument("--slo-availability", type=float, default=0.999,
                   help="availability objective for /slo burn rates")
    p.add_argument("--slo-latency-ms", type=float, default=250.0,
                   help="latency objective for /slo burn rates")
    p.add_argument("--retry-attempts", type=int, default=2,
                   help="per-shard attempts for transient failures "
                        "(crashed worker, corrupt reply); 1 disables")
    p.add_argument("--hedge-ms", type=float, default=None,
                   help="fire a duplicate shard request after this "
                        "many ms without a reply (tail hedging; off "
                        "by default)")
    p.add_argument("--breaker-failures", type=int, default=3,
                   help="consecutive shard failures that open its "
                        "circuit breaker")
    p.add_argument("--breaker-open-ms", type=float, default=250.0,
                   help="base quarantine before a breaker half-opens "
                        "(doubles per re-trip, seeded jitter)")
    p.add_argument("--drain-grace-ms", type=float, default=5000.0,
                   help="SIGTERM drain: wait this long for in-flight "
                        "requests before stopping the pools")
    p.add_argument("--no-supervision", action="store_true",
                   help="disable breakers/retries/degraded partials; "
                        "any shard failure fails the request (A/B "
                        "overhead measurement)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="fault-injection schedule, e.g. "
                        "'kill=0.02,latency=0.1,latency-ms=50,"
                        "error=0.05,byte=0.01,seed=3' (requires "
                        "--workers >= 1; see docs/RELIABILITY.md)")
    p.add_argument("--capture", default=None, metavar="PATH",
                   help="record every answered query (terms, k, arrival "
                        "offset, result digest, resource account) as a "
                        "replayable JSONL workload")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("doctor",
                       help="index analytics: per-term size "
                            "distribution, compression ratios, shard "
                            "skew, cache-efficiency estimates")
    p.add_argument("database", help="saved database directory")
    p.add_argument("--workload", default=None, metavar="JSONL",
                   help="captured workload (`serve --capture`) for the "
                        "cache-efficiency estimate")
    p.add_argument("--heavy", type=int, default=10,
                   help="heavy-hitter terms to list")
    p.add_argument("--no-codecs", action="store_true",
                   help="skip the per-level/per-codec compression scan")
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the report JSON here")
    p.add_argument("--check", action="store_true",
                   help="apply thresholds; exit 1 on violation (CI gate)")
    p.add_argument("--max-shard-byte-skew", type=float, default=1.5,
                   help="max shard postings-bytes max/mean ratio "
                        "(default 1.5)")
    p.add_argument("--max-shard-term-skew", type=float, default=None)
    p.add_argument("--max-term-share", type=float, default=None,
                   help="max single-term share of total postings bytes")
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser("replay",
                       help="re-drive a captured workload against a "
                            "database and diff digests, latency and "
                            "resource accounts")
    p.add_argument("workload", help="repro.workload/v1 JSONL from "
                                    "`repro serve --capture`")
    p.add_argument("database", help="database directory to replay "
                                    "against")
    p.add_argument("--mode", choices=("closed", "open"), default="closed",
                   help="closed-loop back-to-back (default) or "
                        "open-loop at the recorded arrival offsets")
    p.add_argument("--speed", type=float, default=1.0,
                   help="open-loop arrival-rate multiplier")
    p.add_argument("--limit", type=int, default=None,
                   help="replay only the first N queries")
    p.add_argument("--against", default=None, metavar="REPORT_JSON",
                   help="diff against a prior replay report instead of "
                        "the capture")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the replay report JSON here")
    p.add_argument("--json", action="store_true")
    p.add_argument("--append", action="store_true",
                   help="append the report to the regress history "
                        "(scale=replay)")
    p.add_argument("--history", default="BENCH_history.jsonl")
    p.add_argument("--fail-on-mismatch", action="store_true",
                   help="exit 1 on any digest mismatch or grown "
                        "resource total")
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("chaos",
                       help="seeded chaos drive against an in-process "
                            "daemon: kill workers, inject faults, "
                            "assert availability and healing SLOs")
    p.add_argument("database", help="database directory or XML file")
    p.add_argument("--spec", default="kill=0.05,latency=0.15,"
                                     "latency-ms=40,error=0.05,byte=0.02",
                   help="fault mix, same syntax as `serve --chaos`")
    p.add_argument("--seed", type=int, default=None,
                   help="chaos schedule seed (overrides seed= in --spec)")
    p.add_argument("--shards", type=int, default=None,
                   help="re-partition an unsharded database in memory")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes per shard (must be >= 1)")
    p.add_argument("--requests", type=int, default=200,
                   help="requests to drive through the fault schedule")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent keep-alive client connections")
    p.add_argument("-k", type=int, default=10)
    p.add_argument("--timeout-ms", type=float, default=1500.0,
                   help="per-request deadline during the drive")
    p.add_argument("--availability-target", type=float, default=0.99,
                   help="minimum accepted-request availability "
                        "(429 sheds excluded)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full chaos report here as JSON")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("info", help="database statistics and index sizes")
    p.add_argument("database")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("explain",
                       help="per-level plan of the join-based evaluation")
    p.add_argument("database")
    p.add_argument("query")
    p.add_argument("--semantics", choices=("elca", "slca"),
                   default="elca")
    p.add_argument("--trace", action="store_true",
                   help="attach the span tree of the evaluation")
    p.add_argument("--analyze", action="store_true",
                   help="EXPLAIN ANALYZE: audit predicted vs. actual "
                        "cardinality and plan regret per level")
    p.add_argument("--shadow", choices=("off", "sampled", "all"),
                   default="off",
                   help="with --analyze, also run the not-chosen join "
                        "algorithm for measured regret")
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("audit",
                       help="EXPLAIN ANALYZE the section III-C plan of "
                            "one query (q-error, regret, verdict)")
    p.add_argument("database")
    p.add_argument("query")
    p.add_argument("--semantics", choices=("elca", "slca"),
                   default="elca")
    p.add_argument("--shadow", choices=("off", "sampled", "all"),
                   default="off",
                   help="really run the not-chosen join algorithm: "
                        "never / on sampled levels / everywhere")
    p.add_argument("--policy", choices=("dynamic", "merge", "index"),
                   default="dynamic",
                   help="join policy to audit (forced plans show what "
                        "the optimizer saves)")
    p.add_argument("--sample-size", type=int, default=None,
                   help="cardinality probe sample size (0 disables the "
                        "sampled refinement, auditing the pure "
                        "containment formula)")
    p.add_argument("--json", action="store_true",
                   help="print the audit as JSON instead of text")
    p.add_argument("--out", default=None,
                   help="also write the audit as JSON to this file")
    p.add_argument("--fail-on-misprediction", action="store_true",
                   help="exit 1 if any level is flagged")
    p.set_defaults(fn=cmd_audit)

    p = sub.add_parser("metrics",
                       help="dump the metrics registry (Prometheus "
                            "exposition; --json for the raw snapshot)")
    p.add_argument("database", nargs="?", default=None,
                   help="optional database; with --query, queries run "
                        "first so the dump reflects real serving work")
    p.add_argument("--query", action="append", default=None,
                   help="query to run before dumping (repeatable)")
    p.add_argument("-k", type=int, default=None,
                   help="run --query as top-K instead of complete")
    p.add_argument("--semantics", choices=("elca", "slca"),
                   default="elca")
    p.add_argument("--json", action="store_true",
                   help="raw MetricsRegistry.snapshot() JSON instead of "
                        "Prometheus exposition")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("regress",
                       help="perf-regression time series over "
                            "BENCH_hotpath runs (append / check)")
    p.add_argument("--history", default="BENCH_history.jsonl")
    p.add_argument("--append", metavar="REPORT_JSON", default=None,
                   help="fold a BENCH_hotpath.json into the history")
    p.add_argument("--check", action="store_true",
                   help="compare newest entry vs the trailing median; "
                        "exit 1 on >threshold p50 regression")
    p.add_argument("--threshold", type=float, default=0.15)
    p.add_argument("--window", type=int, default=5)
    p.add_argument("--min-history", type=int, default=2)
    p.set_defaults(fn=cmd_regress)

    p = sub.add_parser("trace",
                       help="run one traced query (span tree), or "
                            "render daemon trace/access JSONL with "
                            "--from-log")
    p.add_argument("database", nargs="?", default=None)
    p.add_argument("query", nargs="?", default=None)
    p.add_argument("-k", type=int, default=None,
                   help="trace a top-K search instead of a complete one")
    p.add_argument("--semantics", choices=("elca", "slca"),
                   default="elca")
    p.add_argument("--out", default=None,
                   help="write the span tree as JSONL to this file")
    p.add_argument("--metrics-out", default=None,
                   help="write the metrics snapshot as JSON to this file")
    p.add_argument("--prometheus", action="store_true",
                   help="print the Prometheus text exposition")
    p.add_argument("--slow-ms", type=float, default=None,
                   help="slow-query threshold; report if exceeded")
    p.add_argument("--from-log", default=None, metavar="FILE",
                   help="read a daemon --trace-log / --access-log JSONL "
                        "instead of running a query; stitched traces "
                        "render as per-shard span trees")
    p.add_argument("--trace-id", default=None,
                   help="with --from-log: only entries for this trace")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("slo",
                       help="SLO burn-rate report from a daemon URL "
                            "(GET /slo) or an access-log JSONL file")
    p.add_argument("target",
                   help="http(s)://host:port of a live daemon, or the "
                        "path of an access-log JSONL")
    p.add_argument("--availability-target", type=float, default=0.999,
                   help="offline reports: availability objective")
    p.add_argument("--latency-target-ms", type=float, default=250.0,
                   help="offline reports: latency objective (ms)")
    p.add_argument("--latency-target-ratio", type=float, default=0.99,
                   help="offline reports: fraction of 200s that must "
                        "beat the latency objective")
    p.add_argument("--json", action="store_true",
                   help="print the raw report JSON")
    p.add_argument("--fail-on-alert", action="store_true",
                   help="exit 1 if any objective burns faster than "
                        "budget (CI gating)")
    p.set_defaults(fn=cmd_slo)

    p = sub.add_parser("bench",
                       help="regenerate the paper's tables and figures")
    p.add_argument("--small", action="store_true",
                   help="fast smoke-scale configuration")
    p.set_defaults(fn=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_MISSING
    except DatabaseFormatError as exc:
        # Covers DatabaseCorruptError (its subclass): checksum
        # mismatches, truncated files, interrupted saves.
        print(f"error: database unusable: {exc}", file=sys.stderr)
        return EXIT_CORRUPT
    except DeadlineExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_DEADLINE
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Reader went away mid-stream (e.g. `repro trace ... | head`).
        # Redirect stdout so the interpreter's exit flush doesn't raise
        # a second time, and exit the way Unix filters do.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 128 + 13


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
