"""Public facade: `XMLDatabase` and `Query`.

One object bundles the tree, both index families and every algorithm::

    from repro import XMLDatabase

    db = XMLDatabase.from_xml_text(open("bib.xml").read())
    for r in db.search("xml data", semantics="elca"):
        print(r.node.tag, r.node.dewey, r.score)

    top = db.search_topk("xml keyword search", k=10)

Indexes are built lazily on first use, so parsing a document and running
a single stack-based query does not pay for the columnar index.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .algorithms.base import (ELCA, EmptyResultError, SearchResult,
                              TopKResult, check_semantics, sort_by_score)
from .algorithms.hybrid import HybridTopKSearch
from .algorithms.index_based import IndexBasedSearch
from .algorithms.join_based import JoinBasedSearch
from .algorithms.oracle import SemanticsOracle
from .algorithms.rdil import RDILSearch
from .algorithms.stack_based import StackBasedSearch
from .algorithms.topk_keyword import TopKKeywordSearch
from .index.columnar import ColumnarIndex
from .index.inverted import InvertedIndex
from .index.tokenizer import Tokenizer
from .planner.plans import JoinPlanner
from .scoring.ranking import RankingModel
from .xmltree.jdewey import JDeweyEncoder
from .xmltree.parser import parse_xml
from .xmltree.tree import XMLTree

ALGORITHMS = ("join", "stack", "index", "oracle")
TOPK_ALGORITHMS = ("topk-join", "rdil", "hybrid", "join")


class Query:
    """A parsed keyword query: distinct terms in first-appearance order."""

    def __init__(self, text_or_terms: Union[str, Sequence[str]],
                 tokenizer: Optional[Tokenizer] = None):
        tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        if isinstance(text_or_terms, str):
            self.terms = tokenizer.query_terms(text_or_terms)
        else:
            seen: Dict[str, None] = {}
            for term in text_or_terms:
                seen.setdefault(term.lower(), None)
            self.terms = list(seen)

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Query({' '.join(self.terms)!r})"


class XMLDatabase:
    """An indexed XML document plus every search algorithm."""

    def __init__(self, tree: XMLTree, tokenizer: Optional[Tokenizer] = None,
                 ranking: Optional[RankingModel] = None,
                 jdewey_gap: int = 0):
        if not tree.frozen:
            tree.freeze()
        self.tree = tree
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.ranking = ranking if ranking is not None else RankingModel()
        self.encoder = JDeweyEncoder(tree, gap=jdewey_gap)
        self._columnar: Optional[ColumnarIndex] = None
        self._inverted: Optional[InvertedIndex] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_xml_text(cls, text: str, **kwargs) -> "XMLDatabase":
        """Parse XML text and index it."""
        return cls(parse_xml(text), **kwargs)

    @classmethod
    def from_tree(cls, tree: XMLTree, **kwargs) -> "XMLDatabase":
        return cls(tree, **kwargs)

    @classmethod
    def generate_dblp(cls, seed: int = 7, n_papers: int = 2000,
                      **kwargs) -> "XMLDatabase":
        """A synthetic DBLP-like database (see `repro.datagen.dblp`)."""
        from .datagen.dblp import DBLPGenerator

        tree = DBLPGenerator(seed=seed, n_papers=n_papers).generate()
        return cls(tree, **kwargs)

    @classmethod
    def generate_xmark(cls, seed: int = 7, scale: float = 0.01,
                       **kwargs) -> "XMLDatabase":
        """A synthetic XMark-like database (see `repro.datagen.xmark`)."""
        from .datagen.xmark import XMarkGenerator

        tree = XMarkGenerator(seed=seed, scale=scale).generate()
        return cls(tree, **kwargs)

    @classmethod
    def open(cls, path: str, **kwargs) -> "XMLDatabase":
        """Open a database directory written by `save`."""
        from .diskdb import load_database

        return load_database(path, **kwargs)

    def save(self, path: str) -> None:
        """Persist the document and both indexes to a directory."""
        from .diskdb import save_database

        save_database(self, path)

    # ------------------------------------------------------------------
    # indexes (lazy)
    # ------------------------------------------------------------------

    @property
    def columnar_index(self) -> ColumnarIndex:
        if self._columnar is None:
            self._columnar = ColumnarIndex(self.tree, self.tokenizer,
                                           self.ranking)
        return self._columnar

    @property
    def inverted_index(self) -> InvertedIndex:
        if self._inverted is None:
            self._inverted = InvertedIndex(self.tree, self.tokenizer,
                                           self.ranking)
        return self._inverted

    def refresh(self) -> None:
        """Re-index after document mutations.

        `self.encoder.insert` / `.delete` maintain the JDewey numbering
        incrementally (paper section III-A); Dewey ids and the inverted
        lists are static structures, so after mutating the tree call
        `refresh` to re-freeze and drop the cached indexes (they rebuild
        lazily on the next query).
        """
        self.tree.freeze()
        self._columnar = None
        self._inverted = None

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(self, query: Union[str, Sequence[str], Query],
               semantics: str = ELCA, algorithm: str = "join",
               planner: Optional[JoinPlanner] = None,
               strict: bool = False) -> List[SearchResult]:
        """Complete result set, in document order.

        ``algorithm`` is one of ``join`` (the paper's join-based
        algorithm, default), ``stack``, ``index`` (the two baselines) or
        ``oracle`` (the naive reference evaluation).  With
        ``strict=True`` a query term absent from the corpus raises
        `EmptyResultError` instead of silently returning no results.
        """
        check_semantics(semantics)
        terms = self._terms(query)
        if strict:
            self._check_terms_exist(terms)
        if algorithm == "join":
            engine = JoinBasedSearch(self.columnar_index, planner)
            results, _ = engine.evaluate(terms, semantics)
            return results
        if algorithm == "stack":
            results, _ = StackBasedSearch(self.inverted_index).evaluate(
                terms, semantics)
            return results
        if algorithm == "index":
            results, _ = IndexBasedSearch(self.inverted_index).evaluate(
                terms, semantics)
            return results
        if algorithm == "oracle":
            return SemanticsOracle(self.tree, self.inverted_index,
                                   self.ranking).evaluate(terms, semantics)
        raise ValueError(
            f"unknown algorithm {algorithm!r}; one of {ALGORITHMS}")

    def search_ranked(self, query: Union[str, Sequence[str], Query],
                      semantics: str = ELCA,
                      algorithm: str = "join") -> List[SearchResult]:
        """Complete result set, best score first."""
        return sort_by_score(self.search(query, semantics, algorithm))

    def search_topk(self, query: Union[str, Sequence[str], Query], k: int,
                    semantics: str = ELCA, algorithm: str = "topk-join",
                    strict: bool = False) -> TopKResult:
        """Top-`k` results, best first.

        ``algorithm`` is one of ``topk-join`` (the paper's join-based
        top-K algorithm, default), ``rdil`` (the TA-style baseline),
        ``hybrid`` (section V-D) or ``join`` (evaluate everything, then
        truncate -- the "general join-based" line of Figure 10).
        """
        check_semantics(semantics)
        terms = self._terms(query)
        if strict:
            self._check_terms_exist(terms)
        if algorithm == "topk-join":
            return TopKKeywordSearch(self.columnar_index).search(
                terms, k, semantics)
        if algorithm == "rdil":
            return RDILSearch(self.inverted_index).search(terms, k, semantics)
        if algorithm == "hybrid":
            return HybridTopKSearch(self.columnar_index).search(
                terms, k, semantics)
        if algorithm == "join":
            engine = JoinBasedSearch(self.columnar_index)
            results, stats = engine.evaluate(terms, semantics)
            return TopKResult(sort_by_score(results)[:k], stats)
        raise ValueError(
            f"unknown algorithm {algorithm!r}; one of {TOPK_ALGORITHMS}")

    def search_stream(self, query: Union[str, Sequence[str], Query],
                      semantics: str = ELCA):
        """Yield results best-first, lazily (progressive top-K).

        Each ``next()`` advances the join-based top-K machinery only far
        enough to prove one more result safe; abandoning the generator
        abandons the remaining work.
        """
        return TopKKeywordSearch(self.columnar_index).stream(
            self._terms(query), semantics)

    def explain(self, query: Union[str, Sequence[str], Query],
                semantics: str = ELCA,
                planner: Optional[JoinPlanner] = None):
        """Per-level trace of the join-based evaluation (a `QueryPlan`).

        Shows the dynamic optimization at work: column sizes,
        cardinality estimates and the merge/index join chosen at each
        level (paper section III-C).
        """
        from .algorithms.explain import explain as _explain

        return _explain(self.columnar_index, self._terms(query), semantics,
                        planner)

    def _terms(self, query: Union[str, Sequence[str], Query]) -> List[str]:
        if isinstance(query, Query):
            return query.terms
        return Query(query, self.tokenizer).terms

    def _check_terms_exist(self, terms: Sequence[str]) -> None:
        missing = [t for t in terms
                   if self.inverted_index.document_frequency(t) == 0]
        if missing:
            raise EmptyResultError(
                f"query terms with no occurrences: {missing}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        return self.inverted_index.document_frequency(term.lower())

    def __len__(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XMLDatabase nodes={len(self.tree)} depth={self.tree.depth}>"
