"""Public facade: `XMLDatabase` and `Query`.

One object bundles the tree, both index families and every algorithm::

    from repro import XMLDatabase

    db = XMLDatabase.from_xml_text(open("bib.xml").read())
    for r in db.search("xml data", semantics="elca"):
        print(r.node.tag, r.node.dewey, r.score)

    top = db.search_topk("xml keyword search", k=10)

Indexes are built lazily on first use, so parsing a document and running
a single stack-based query does not pay for the columnar index.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .algorithms.base import (ELCA, EmptyResultError, ExecutionStats,
                              SearchResult, TopKResult, check_semantics,
                              sort_by_score)
from .obs.account import accounting, fold_into_stats
from .obs.metrics import MetricsRegistry, get_registry
from .obs.profiler import PhaseProfiler, profile_phase
from .obs.slowlog import SlowQueryLog
from .obs.tracing import NULL_TRACER, Span, Tracer
from .algorithms.hybrid import HybridTopKSearch
from .algorithms.index_based import IndexBasedSearch
from .algorithms.join_based import JoinBasedSearch
from .algorithms.oracle import SemanticsOracle
from .algorithms.rdil import RDILSearch
from .algorithms.stack_based import StackBasedSearch
from .algorithms.topk_keyword import TopKKeywordSearch
from .cache import QueryCache, result_key
from .reliability.deadline import Deadline, deadline_scope
from .reliability.errors import DeadlineExceeded, WorkerCrashError
from .index.columnar import ColumnarIndex
from .index.inverted import InvertedIndex
from .index.tokenizer import Tokenizer
from .planner.plans import JoinPlanner
from .scoring.ranking import RankingModel
from .xmltree.jdewey import JDeweyEncoder
from .xmltree.parser import parse_xml
from .xmltree.tree import XMLTree

ALGORITHMS = ("join", "stack", "index", "oracle")
TOPK_ALGORITHMS = ("topk-join", "rdil", "hybrid", "join")

#: The database a forked `search_batch` worker serves.  Set in the
#: parent immediately before the fork-context pool spawns its workers,
#: so children inherit the object -- index structures, mmap'd columns
#: and caches -- copy-on-write, with zero serialization.
_WORKER_DB: Optional["XMLDatabase"] = None

#: Test seam: a callable run at worker entry with the query value.
#: Installed in the parent *before* the pool forks (workers inherit it
#: copy-on-write), it lets crash-recovery tests kill a worker
#: deterministically on a chosen query -- the same fork-inherited-hook
#: trick `repro.diskdb` uses for disk faults.
_BATCH_FAULT_HOOK = None


def _process_batch_worker(payload):
    """Evaluate one batch query inside a forked worker.

    Runs the same cache-then-evaluate sequence as the in-process
    `search_batch` closure, against the worker's inherited database
    copy.  Ships back a *light* result -- ``(level, last JDewey
    component, score, witnesses)`` per hit -- instead of pickling
    `Node`/tree graphs; the parent rehydrates through
    ``columnar_index.node_at``.  Exceptions come back as values so the
    parent keeps batch error isolation.
    """
    index, query, semantics, k, algorithm, use_cache, deadline = payload
    if _BATCH_FAULT_HOOK is not None:
        _BATCH_FAULT_HOOK(query)
    db = _WORKER_DB
    if db is None:  # pragma: no cover - misuse guard
        raise RuntimeError(
            "worker process has no database; process pools must be "
            "created by XMLDatabase.batch_executor(processes=...) or "
            "search_batch(processes=...)")
    start = time.perf_counter()
    try:
        terms = db._terms(query)
        results: Optional[List[SearchResult]] = None
        stats = ExecutionStats()
        key = result_key(terms, semantics, algorithm, k)
        if use_cache:
            results = db.cache.get_results(key)
            if results is not None:
                stats.cache_hits = 1
        if results is None:
            if k is None:
                results, stats = db._complete_results(
                    terms, semantics, algorithm, deadline=deadline)
            else:
                top = db._topk_result(terms, semantics, algorithm, k,
                                      deadline=deadline)
                results, stats = list(top.results), top.stats
            if use_cache:
                db.cache.put_results(key, results, partial=stats.partial)
                stats.cache_misses += 1
        light = [(r.node.level, r.node.jdewey[-1], r.score,
                  tuple(r.witness_scores)) for r in results]
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return index, terms, light, stats, elapsed_ms, None
    except Exception as exc:
        import pickle

        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return index, [], None, ExecutionStats(), 0.0, exc


class BatchResult(list):
    """The list returned by `XMLDatabase.search_batch`, plus aggregates.

    Behaves exactly like the plain list of per-query entries (results
    lists, or ``(results, stats)`` pairs with ``with_stats=True``) so
    existing callers are untouched, and additionally carries the
    batch-level summary so nobody folds stats by hand:

    * ``summary`` -- every per-query `ExecutionStats` merged (counters
      added, ``per_level_plan`` concatenated in completion order);
    * ``latencies_ms`` -- per-query wall times, same order as entries;
    * ``elapsed_ms`` -- wall time of the whole batch (wall clock, not
      the sum: with ``threads`` > 1 it is smaller than the sum);
    * ``errors`` -- query index -> exception, for queries that failed
      when the batch ran with error isolation (the default).  A failed
      query's entry is ``None`` (or ``(None, stats)``) and its slot
      contributes nothing to ``summary``.
    """

    summary: ExecutionStats
    latencies_ms: List[float]
    elapsed_ms: float
    errors: Dict[int, BaseException]

    @property
    def n_queries(self) -> int:
        return len(self)

    @property
    def ok(self) -> bool:
        """True when every query in the batch succeeded."""
        return not self.errors


class Query:
    """A parsed keyword query: distinct terms in first-appearance order.

    Both input shapes route through `Tokenizer.query_terms`, so a list
    of terms normalizes exactly like the equivalent query string --
    cache keys and postings lookups always agree on the term spelling.
    """

    def __init__(self, text_or_terms: Union[str, Sequence[str]],
                 tokenizer: Optional[Tokenizer] = None):
        tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        if isinstance(text_or_terms, str):
            self.terms = tokenizer.query_terms(text_or_terms)
        else:
            self.terms = tokenizer.query_terms(" ".join(text_or_terms))

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Query({' '.join(self.terms)!r})"


class XMLDatabase:
    """An indexed XML document plus every search algorithm.

    A `repro.cache.QueryCache` is wired in by default: per-term postings
    lookups and whole query results are LRU-cached (index structures are
    read-only after build, so cached entries never go stale between
    `refresh` calls).  Size the caches with ``postings_cache_size`` /
    ``result_cache_size`` (0 disables storage) or pass a shared
    `QueryCache` via ``cache``.

    Observability (`repro.obs`): every query publishes latency and work
    counters into ``metrics`` (the process-wide registry by default);
    pass a live `Tracer` as ``tracer`` to record per-query span trees
    (the default `NullTracer` keeps the hot path unchanged); pass
    ``slow_log`` (or just ``slow_query_ms``) to capture query, stats
    and trace of every over-threshold outlier.  The phase profiler
    (`repro.obs.profiler`) is *on* by default -- every query's wall
    time is attributed to pipeline phases and published as
    ``repro_phase_time_ms{phase=...}``; pass
    ``profiler=repro.obs.NULL_PROFILER`` to switch it off.
    """

    def __init__(self, tree: XMLTree, tokenizer: Optional[Tokenizer] = None,
                 ranking: Optional[RankingModel] = None,
                 jdewey_gap: int = 0,
                 cache: Optional[QueryCache] = None,
                 postings_cache_size: int = 256,
                 result_cache_size: int = 1024,
                 tracer=None,
                 metrics: Optional[MetricsRegistry] = None,
                 slow_log: Optional[SlowQueryLog] = None,
                 slow_query_ms: Optional[float] = None,
                 profiler=None):
        if not tree.frozen:
            tree.freeze()
        self.tree = tree
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.ranking = ranking if ranking is not None else RankingModel()
        self.encoder = JDeweyEncoder(tree, gap=jdewey_gap)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else get_registry()
        self.profiler = (profiler if profiler is not None
                         else PhaseProfiler(metrics=self.metrics))
        if slow_log is None and slow_query_ms is not None:
            slow_log = SlowQueryLog(threshold_ms=slow_query_ms)
        self.slow_log = slow_log
        self.cache = cache if cache is not None else QueryCache(
            postings_cache_size, result_cache_size)
        if self.cache.metrics is None:
            self.cache.bind_metrics(self.metrics)
        self._columnar: Optional[ColumnarIndex] = None
        self._inverted: Optional[InvertedIndex] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_xml_text(cls, text: str, **kwargs) -> "XMLDatabase":
        """Parse XML text and index it."""
        return cls(parse_xml(text), **kwargs)

    @classmethod
    def from_tree(cls, tree: XMLTree, **kwargs) -> "XMLDatabase":
        return cls(tree, **kwargs)

    @classmethod
    def generate_dblp(cls, seed: int = 7, n_papers: int = 2000,
                      **kwargs) -> "XMLDatabase":
        """A synthetic DBLP-like database (see `repro.datagen.dblp`)."""
        from .datagen.dblp import DBLPGenerator

        tree = DBLPGenerator(seed=seed, n_papers=n_papers).generate()
        return cls(tree, **kwargs)

    @classmethod
    def generate_xmark(cls, seed: int = 7, scale: float = 0.01,
                       **kwargs) -> "XMLDatabase":
        """A synthetic XMark-like database (see `repro.datagen.xmark`)."""
        from .datagen.xmark import XMarkGenerator

        tree = XMarkGenerator(seed=seed, scale=scale).generate()
        return cls(tree, **kwargs)

    @classmethod
    def open(cls, path: str, **kwargs) -> "XMLDatabase":
        """Open a database directory written by `save`."""
        from .diskdb import load_database

        return load_database(path, **kwargs)

    def save(self, path: str, **kwargs) -> None:
        """Persist the document and both indexes to a directory.

        Keyword arguments (``algorithm``, ``fsync``,
        ``format_version``) forward to `repro.diskdb.save_database`.
        """
        from .diskdb import save_database

        save_database(self, path, **kwargs)

    # ------------------------------------------------------------------
    # indexes (lazy)
    # ------------------------------------------------------------------

    @property
    def columnar_index(self) -> ColumnarIndex:
        if self._columnar is None:
            self._columnar = ColumnarIndex(self.tree, self.tokenizer,
                                           self.ranking)
        return self._columnar

    @property
    def inverted_index(self) -> InvertedIndex:
        if self._inverted is None:
            self._inverted = InvertedIndex(self.tree, self.tokenizer,
                                           self.ranking)
        return self._inverted

    def refresh(self) -> None:
        """Re-index after document mutations.

        `self.encoder.insert` / `.delete` maintain the JDewey numbering
        incrementally (paper section III-A); Dewey ids and the inverted
        lists are static structures, so after mutating the tree call
        `refresh` to re-freeze and drop the cached indexes (they rebuild
        lazily on the next query).
        """
        self.tree.freeze()
        self._columnar = None
        self._inverted = None
        self.cache.clear()

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(self, query: Union[str, Sequence[str], Query],
               semantics: str = ELCA, algorithm: str = "join",
               planner: Optional[JoinPlanner] = None,
               strict: bool = False,
               use_cache: bool = True,
               deadline: Optional[Union[Deadline, float]] = None,
               timeout_ms: Optional[float] = None,
               on_deadline: Optional[str] = None,
               with_stats: bool = False,
               audit: bool = False,
               shadow: str = "off"):
        """Complete result set, in document order.

        ``algorithm`` is one of ``join`` (the paper's join-based
        algorithm, default), ``stack``, ``index`` (the two baselines) or
        ``oracle`` (the naive reference evaluation).  With
        ``strict=True`` a query term absent from the corpus raises
        `EmptyResultError` instead of silently returning no results.
        Results are served from the database's result cache when
        possible (``use_cache=False`` opts out; a custom ``planner``
        bypasses the cache so the requested plan actually runs).

        A query budget (`docs/RELIABILITY.md`) is set with ``deadline``
        (a `repro.reliability.Deadline` or a number of milliseconds) or
        the ``timeout_ms`` convenience kwarg; ``on_deadline`` picks the
        expiry policy -- ``"raise"`` (default, `DeadlineExceeded`) or
        ``"partial"`` (return what the evaluated levels proved, with
        ``stats.partial`` set -- pass ``with_stats=True`` to see it;
        partial results are always a subset of the unbounded run's).
        Budgets are enforced on the ``join`` path; the in-memory
        baselines ignore them.  Partial results are never cached.

        ``audit=True`` runs the query under the plan auditor
        (`repro.obs.audit`): ``stats.audit`` then carries a `PlanAudit`
        with per-level predicted vs. actual cardinality, q-error and
        regret (pass ``with_stats=True`` to see it; the run bypasses
        the result cache so the audited plan actually executes).
        ``shadow`` ("off"/"sampled"/"all") additionally times the
        not-chosen join algorithm for measured regret.  Audit requires
        the ``join`` algorithm -- the one with a section III-C plan.

        Returns the result list, or ``(results, stats)`` with
        ``with_stats=True``.
        """
        check_semantics(semantics)
        deadline = Deadline.coerce(deadline, timeout_ms, on_deadline)
        auditor = None
        if audit:
            if algorithm != "join":
                raise ValueError(
                    "audit=True requires algorithm='join' -- only the "
                    "join-based plan has section III-C decisions to audit")
            from .obs.audit import PlanAuditor

            auditor = PlanAuditor(planner, shadow=shadow)
            planner = auditor.planner
        tracer = self.tracer
        start = time.perf_counter()
        stats: Optional[ExecutionStats] = None
        with self.profiler.profile() as prof, \
                tracer.span("query", op="search", semantics=semantics,
                            algorithm=algorithm) as qspan:
            with tracer.span("parse"), profile_phase("parse"):
                terms = self._terms(query)
            qspan.tag(terms=list(terms))
            if strict:
                self._check_terms_exist(terms)
            cacheable = use_cache and planner is None
            key = result_key(terms, semantics, algorithm, None)
            results: Optional[List[SearchResult]] = None
            if cacheable:
                with tracer.span("cache_lookup") as cspan:
                    results = self.cache.get_results(key)
                    cspan.tag(hit=results is not None)
                if results is not None:
                    stats = ExecutionStats()
                    stats.cache_hits = 1
            if results is None:
                try:
                    results, stats = self._complete_results(
                        terms, semantics, algorithm, planner,
                        deadline=deadline,
                        observer=(auditor.observer if auditor is not None
                                  else None))
                except DeadlineExceeded:
                    self.metrics.counter("repro_deadline_hits_total",
                                         {"outcome": "error"}).inc()
                    raise
                if auditor is not None:
                    stats.audit = auditor.finish(terms, semantics)
                if stats.partial:
                    self.metrics.counter("repro_deadline_hits_total",
                                         {"outcome": "partial"}).inc()
                    qspan.tag(partial=True)
                if cacheable:
                    self.cache.put_results(key, results,
                                           partial=stats.partial)
        self._record_query("search", terms, semantics, algorithm, None,
                           (time.perf_counter() - start) * 1000.0, stats,
                           qspan if tracer.enabled else None,
                           phases=prof.phases if prof is not None else None)
        if with_stats:
            return results, stats
        return results

    def _complete_results(self, terms: List[str], semantics: str,
                          algorithm: str,
                          planner: Optional[JoinPlanner] = None,
                          deadline: Optional[Deadline] = None,
                          observer=None
                          ) -> Tuple[List[SearchResult], ExecutionStats]:
        """Uncached complete-evaluation dispatch shared by `search` and
        `search_batch` (and the daemon's shard workers).

        Evaluation runs under a fresh `ResourceAccount` whose totals
        fold into the returned stats -- per-query resource truth for
        every caller, always on (held to the <=5% accounting guard in
        `repro.bench.serve`).
        """
        with accounting() as account:
            results, stats = self._evaluate_complete(
                terms, semantics, algorithm, planner, deadline, observer)
        fold_into_stats(stats, account)
        return results, stats

    def _evaluate_complete(self, terms: List[str], semantics: str,
                           algorithm: str,
                           planner: Optional[JoinPlanner] = None,
                           deadline: Optional[Deadline] = None,
                           observer=None
                           ) -> Tuple[List[SearchResult], ExecutionStats]:
        if algorithm == "join":
            engine = JoinBasedSearch(self.columnar_index, planner,
                                     postings_cache=self.cache,
                                     tracer=self.tracer)
            if deadline is not None:
                # The scope lets the lazy disk index poll the deadline
                # from inside column materialization; the engine itself
                # receives the deadline as a parameter and handles the
                # partial policy at level boundaries.
                with deadline_scope(deadline):
                    return engine.evaluate(terms, semantics,
                                           observer=observer,
                                           deadline=deadline)
            return engine.evaluate(terms, semantics, observer=observer)
        if algorithm == "stack":
            return StackBasedSearch(self.inverted_index).evaluate(
                terms, semantics)
        if algorithm == "index":
            return IndexBasedSearch(self.inverted_index).evaluate(
                terms, semantics)
        if algorithm == "oracle":
            results = SemanticsOracle(self.tree, self.inverted_index,
                                      self.ranking).evaluate(terms, semantics)
            return results, ExecutionStats()
        raise ValueError(
            f"unknown algorithm {algorithm!r}; one of {ALGORITHMS}")

    def search_ranked(self, query: Union[str, Sequence[str], Query],
                      semantics: str = ELCA,
                      algorithm: str = "join",
                      **kwargs) -> List[SearchResult]:
        """Complete result set, best score first.

        Extra keyword arguments (``deadline``, ``timeout_ms``,
        ``on_deadline``, ``use_cache``, ...) forward to `search`.
        """
        return sort_by_score(self.search(query, semantics, algorithm,
                                         **kwargs))

    def search_topk(self, query: Union[str, Sequence[str], Query], k: int,
                    semantics: str = ELCA, algorithm: str = "topk-join",
                    strict: bool = False,
                    deadline: Optional[Union[Deadline, float]] = None,
                    timeout_ms: Optional[float] = None,
                    on_deadline: Optional[str] = None) -> TopKResult:
        """Top-`k` results, best first.

        ``algorithm`` is one of ``topk-join`` (the paper's join-based
        top-K algorithm, default), ``rdil`` (the TA-style baseline),
        ``hybrid`` (section V-D) or ``join`` (evaluate everything, then
        truncate -- the "general join-based" line of Figure 10).

        ``deadline`` / ``timeout_ms`` / ``on_deadline`` set a query
        budget (`docs/RELIABILITY.md`), enforced on the ``topk-join``
        and ``join`` paths.  Under the ``partial`` policy an expired
        run returns the prefix proven so far: ``TopKResult.partial`` is
        set and ``TopKResult.bound`` is the guarantee gap -- no result
        the run did not return can score above it.
        """
        check_semantics(semantics)
        deadline = Deadline.coerce(deadline, timeout_ms, on_deadline)
        tracer = self.tracer
        start = time.perf_counter()
        with self.profiler.profile() as prof, \
                tracer.span("query", op="topk", semantics=semantics,
                            algorithm=algorithm, k=k) as qspan:
            with tracer.span("parse"), profile_phase("parse"):
                terms = self._terms(query)
            qspan.tag(terms=list(terms))
            if strict:
                self._check_terms_exist(terms)
            try:
                top = self._topk_result(terms, semantics, algorithm, k,
                                        deadline=deadline)
            except DeadlineExceeded:
                self.metrics.counter("repro_deadline_hits_total",
                                     {"outcome": "error"}).inc()
                raise
            if top.partial:
                self.metrics.counter("repro_deadline_hits_total",
                                     {"outcome": "partial"}).inc()
                qspan.tag(partial=True)
        self._record_query("topk", terms, semantics, algorithm, k,
                           (time.perf_counter() - start) * 1000.0,
                           top.stats, qspan if tracer.enabled else None,
                           phases=prof.phases if prof is not None else None)
        return top

    def _topk_result(self, terms: List[str], semantics: str, algorithm: str,
                     k: int,
                     deadline: Optional[Deadline] = None) -> TopKResult:
        """Uncached top-K dispatch shared by `search_topk` and
        `search_batch` (and the daemon's shard workers), accounted the
        same way as `_complete_results`."""
        with accounting() as account:
            top = self._evaluate_topk(terms, semantics, algorithm, k,
                                      deadline=deadline)
        fold_into_stats(top.stats, account)
        return top

    def _evaluate_topk(self, terms: List[str], semantics: str,
                       algorithm: str, k: int,
                       deadline: Optional[Deadline] = None) -> TopKResult:
        if algorithm == "topk-join":
            engine = TopKKeywordSearch(self.columnar_index,
                                       tracer=self.tracer)
            if deadline is not None:
                with deadline_scope(deadline):
                    return engine.search(terms, k, semantics,
                                         deadline=deadline)
            return engine.search(terms, k, semantics)
        if algorithm == "rdil":
            return RDILSearch(self.inverted_index).search(terms, k, semantics)
        if algorithm == "hybrid":
            return HybridTopKSearch(self.columnar_index).search(
                terms, k, semantics)
        if algorithm == "join":
            engine = JoinBasedSearch(self.columnar_index,
                                     postings_cache=self.cache,
                                     tracer=self.tracer)
            if deadline is not None:
                with deadline_scope(deadline):
                    results, stats = engine.evaluate(terms, semantics,
                                                     deadline=deadline)
            else:
                results, stats = engine.evaluate(terms, semantics)
            return TopKResult(sort_by_score(results)[:k], stats,
                              partial=stats.partial)
        raise ValueError(
            f"unknown algorithm {algorithm!r}; one of {TOPK_ALGORITHMS}")

    def search_batch(self, queries: Sequence[Union[str, Sequence[str],
                                                   Query]],
                     semantics: str = ELCA,
                     k: Optional[int] = None,
                     algorithm: Optional[str] = None,
                     threads: Optional[int] = None,
                     processes: Optional[int] = None,
                     executor=None,
                     with_stats: bool = False,
                     use_cache: bool = True,
                     deadline: Optional[Union[Deadline, float]] = None,
                     timeout_ms: Optional[float] = None,
                     on_deadline: Optional[str] = None,
                     raise_on_error: bool = False):
        """Evaluate many queries against shared cache state.

        ``k=None`` (default) runs complete evaluations (``algorithm``
        defaults to ``join``) and each entry of the returned list is the
        query's `SearchResult` list in document order; with ``k`` set,
        top-K evaluations run instead (``algorithm`` defaults to
        ``topk-join``) and each entry is the best-first truncated list.

        ``threads`` > 1 evaluates queries on a thread pool -- the index
        structures are read-only after build and the caches take a lock,
        so results are identical to the sequential run.  ``processes``
        > 1 evaluates them on a fork-based process pool instead: each
        worker inherits the database copy-on-write (for a format-v3
        database the mmap'd columns are *shared* pages, not copies),
        sidestepping the GIL for CPU-bound batches.  Per-worker
        `ExecutionStats` merge into ``summary`` exactly as in-process
        stats do, and the parent re-records every query's latency and
        join counters, so metrics totals match a single-process run.
        On platforms without the ``fork`` start method the call falls
        back to a thread pool of the same width.  ``executor`` accepts
        a reusable pool from `batch_executor` (or any
        `ThreadPoolExecutor`) -- it is *not* shut down, so warmed
        workers amortize across batches.  Per-query tracer spans are
        not recorded on the process path (spans cannot cross the
        process boundary).  With
        ``with_stats=True`` entries are ``(results, ExecutionStats)``
        pairs; a repeated query is served from the result cache
        (``stats.cache_hits == 1``) and skips level evaluation entirely
        (``stats.levels_processed == 0``).

        The returned list is a `BatchResult`: it additionally carries
        ``summary`` (every per-query `ExecutionStats` merged, cache
        counters included), ``latencies_ms`` and ``elapsed_ms``, so
        callers never fold stats by hand.  The batch also publishes into
        the metrics registry: ``repro_batch_queries_total``,
        ``repro_batch_queue_depth`` (queries accepted but not yet
        finished) and per-query ``repro_query_latency_ms{op=batch}``.

        One failing query does not lose the batch: by default its slot
        holds ``None`` (or ``(None, stats)``), the exception lands in
        ``BatchResult.errors`` keyed by query index, and
        ``repro_batch_query_errors_total`` counts it.  Pass
        ``raise_on_error=True`` to get fail-fast propagation instead.

        ``deadline`` / ``timeout_ms`` / ``on_deadline`` set one shared
        budget for the whole batch: every query checks the same clock,
        so once it expires the remaining deadline-aware queries either
        raise (isolated into ``errors`` unless ``raise_on_error``) or
        return partial results, per the policy.
        """
        check_semantics(semantics)
        deadline = Deadline.coerce(deadline, timeout_ms, on_deadline)
        if algorithm is None:
            algorithm = "join" if k is None else "topk-join"
        tracer = self.tracer
        queue_depth = self.metrics.gauge("repro_batch_queue_depth")
        batch_start = time.perf_counter()

        def one(query) -> Tuple[List[SearchResult], ExecutionStats, float]:
            start = time.perf_counter()
            with self.profiler.profile() as prof, \
                    tracer.span("query", op="batch", semantics=semantics,
                                algorithm=algorithm, k=k) as qspan:
                with tracer.span("parse"), profile_phase("parse"):
                    terms = self._terms(query)
                qspan.tag(terms=list(terms))
                results: Optional[List[SearchResult]] = None
                stats = ExecutionStats()
                key = result_key(terms, semantics, algorithm, k)
                if use_cache:
                    with tracer.span("cache_lookup") as cspan:
                        results = self.cache.get_results(key)
                        cspan.tag(hit=results is not None)
                    if results is not None:
                        stats.cache_hits = 1
                if results is None:
                    if k is None:
                        results, stats = self._complete_results(
                            terms, semantics, algorithm, deadline=deadline)
                    else:
                        top = self._topk_result(terms, semantics,
                                                algorithm, k,
                                                deadline=deadline)
                        results, stats = list(top.results), top.stats
                    if stats.partial:
                        self.metrics.counter("repro_deadline_hits_total",
                                             {"outcome": "partial"}).inc()
                        qspan.tag(partial=True)
                    if use_cache:
                        before = self.cache.results.stats.evictions
                        self.cache.put_results(key, results,
                                               partial=stats.partial)
                        stats.cache_misses += 1
                        stats.cache_evictions += \
                            self.cache.results.stats.evictions - before
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self._record_query("batch", terms, semantics, algorithm, k,
                               elapsed_ms, stats,
                               qspan if tracer.enabled else None,
                               phases=(prof.phases if prof is not None
                                       else None))
            return results, stats, elapsed_ms

        import threading

        errors: Dict[int, BaseException] = {}
        progress_lock = threading.Lock()
        finished = 0

        def one_isolated(item):
            # queue_depth decrements exactly once per query, success or
            # failure, so the gauge cannot drift under errors.
            nonlocal finished
            index, query = item
            try:
                return one(query)
            except Exception as exc:
                if raise_on_error:
                    raise
                if isinstance(exc, DeadlineExceeded):
                    self.metrics.counter("repro_deadline_hits_total",
                                         {"outcome": "error"}).inc()
                self.metrics.counter(
                    "repro_batch_query_errors_total").inc()
                with progress_lock:
                    errors[index] = exc
                return None, ExecutionStats(), 0.0
            finally:
                queue_depth.dec()
                with progress_lock:
                    finished += 1

        mode, pool, own_pool = self._resolve_batch_pool(
            threads, processes, executor)
        indexed = list(enumerate(queries))
        queue_depth.inc(len(queries))
        try:
            if mode != "inline":
                # Build lazy indexes up-front: concurrent first touches
                # would otherwise race to construct them (and forked
                # workers must inherit them already built).
                if algorithm in ("join", "topk-join", "hybrid"):
                    self.columnar_index
                if algorithm in ("stack", "index", "oracle", "rdil"):
                    self.inverted_index
            if mode == "process":
                def on_done():
                    nonlocal finished
                    queue_depth.dec()
                    with progress_lock:
                        finished += 1

                triples = self._run_batch_processes(
                    pool, own_pool, processes, indexed, semantics, k,
                    algorithm, use_cache, deadline, raise_on_error,
                    errors, on_done)
            elif mode == "thread":
                if own_pool:
                    with pool:
                        triples = list(pool.map(one_isolated, indexed))
                else:
                    triples = list(pool.map(one_isolated, indexed))
            else:
                triples = [one_isolated(item) for item in indexed]
        except BaseException:
            # Fail-fast propagation: queries that never started still
            # hold queue slots; release them so the gauge stays honest.
            queue_depth.dec(len(queries) - finished)
            raise

        summary = ExecutionStats()
        for index, (_results, stats, _ms) in enumerate(triples):
            if index not in errors:
                summary.merge(stats)
        if with_stats:
            batch = BatchResult((results, stats)
                                for results, stats, _ms in triples)
        else:
            batch = BatchResult(results for results, _stats, _ms in triples)
        batch.summary = summary
        batch.latencies_ms = [ms for _results, _stats, ms in triples]
        batch.elapsed_ms = (time.perf_counter() - batch_start) * 1000.0
        batch.errors = errors
        self.metrics.counter("repro_batch_queries_total").inc(len(queries))
        self.metrics.histogram("repro_batch_latency_ms").observe(
            batch.elapsed_ms)
        return batch

    def batch_executor(self, threads: Optional[int] = None,
                       processes: Optional[int] = None):
        """A reusable pool for ``search_batch(executor=...)``.

        Pass exactly one of ``threads`` / ``processes``.  The process
        flavour is a fork-context `ProcessPoolExecutor` bound to *this*
        database: workers fork lazily on the first batch and inherit
        the built indexes (and any format-v3 mmap) copy-on-write, so
        reusing the executor across batches amortizes both worker
        startup and page warmup.  Handing it to a different database's
        ``search_batch`` raises.  On platforms without the ``fork``
        start method a thread pool of the same width is returned
        instead.  The caller owns the executor: ``search_batch`` never
        shuts it down, call ``.shutdown()`` (or use it as a context
        manager) when done.
        """
        if (threads is None) == (processes is None):
            raise ValueError("pass exactly one of threads= / processes=")
        from concurrent.futures import (ProcessPoolExecutor,
                                        ThreadPoolExecutor)

        if threads is not None:
            pool = ThreadPoolExecutor(max_workers=threads)
            pool._repro_mode = "thread"
            return pool
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            # pragma: no cover - spawn-only platforms
            pool = ThreadPoolExecutor(max_workers=processes)
            pool._repro_mode = "thread"
            return pool
        global _WORKER_DB
        _WORKER_DB = self
        pool = ProcessPoolExecutor(
            max_workers=processes,
            mp_context=multiprocessing.get_context("fork"))
        pool._repro_mode = "process"
        pool._repro_db_id = id(self)
        return pool

    def _resolve_batch_pool(self, threads: Optional[int],
                            processes: Optional[int], executor):
        """Pick the batch execution mode: ``("inline"|"thread"|"process",
        pool, own_pool)``.  Validates reused executors and falls back
        from processes to threads when ``fork`` is unavailable."""
        if executor is not None:
            if threads is not None or processes is not None:
                raise ValueError(
                    "pass either executor= or threads=/processes=, "
                    "not both")
            from concurrent.futures import ProcessPoolExecutor

            mode = getattr(executor, "_repro_mode", None)
            if mode is None:
                mode = ("process"
                        if isinstance(executor, ProcessPoolExecutor)
                        else "thread")
            if mode == "process":
                if getattr(executor, "_repro_db_id", None) != id(self):
                    raise ValueError(
                        "process executors must come from this "
                        "database's batch_executor(processes=...) -- "
                        "workers fork holding a copy of the database")
            return mode, executor, False
        if threads is not None and processes is not None:
            raise ValueError("pass either threads= or processes=")
        if processes is not None and processes > 1:
            import multiprocessing

            if "fork" in multiprocessing.get_all_start_methods():
                return "process", None, True
            threads = processes  # pragma: no cover - spawn-only platforms
        if threads is not None and threads > 1:
            from concurrent.futures import ThreadPoolExecutor

            pool = ThreadPoolExecutor(max_workers=threads)
            pool._repro_mode = "thread"
            return "thread", pool, True
        return "inline", None, False

    def _run_batch_processes(self, pool, own_pool, processes, indexed,
                             semantics, k, algorithm, use_cache, deadline,
                             raise_on_error, errors, on_done):
        """Fan a batch out to forked workers and rehydrate the results.

        The parent re-records every successful query
        (`_record_query`), so latency histograms and join counters in
        the metrics registry equal a single-process run of the same
        batch; worker-side registries are forked copies and discarded.

        A worker crash (OOM kill, segfault) breaks the whole executor:
        every outstanding future raises `BrokenExecutor`, not just the
        one the dying worker held.  Rather than failing the batch, the
        crash is contained: the broken pool is replaced once and the
        affected queries re-run *one at a time* on the fresh pool, so a
        second crash implicates exactly one query -- that query (and
        any still queued behind it) becomes a typed `WorkerCrashError`
        entry in ``errors`` while the rest of the batch completes
        normally.  Under ``raise_on_error`` the crash propagates as
        `WorkerCrashError` instead.  A caller-owned executor that
        breaks is left to its owner; victims are rescued on a
        temporary pool of the same width.
        """
        global _WORKER_DB
        _WORKER_DB = self
        from concurrent.futures import BrokenExecutor

        def fresh_pool():
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            width = processes or getattr(pool, "_max_workers", 1) or 1
            return ProcessPoolExecutor(
                max_workers=width,
                mp_context=multiprocessing.get_context("fork"))

        if pool is None:
            pool = fresh_pool()
        columnar = self.columnar_index
        triples = [None] * len(indexed)

        def absorb(index, terms, light, stats, elapsed_ms, exc):
            if exc is not None:
                if raise_on_error:
                    raise exc
                if isinstance(exc, DeadlineExceeded):
                    self.metrics.counter(
                        "repro_deadline_hits_total",
                        {"outcome": "error"}).inc()
                self.metrics.counter(
                    "repro_batch_query_errors_total").inc()
                errors[index] = exc
                triples[index] = (None, ExecutionStats(), 0.0)
                return
            results = [
                SearchResult(columnar.node_at(level, number), level,
                             score, witnesses)
                for level, number, score, witnesses in light]
            if use_cache and not stats.cache_hits:
                # Mirror the worker's put into the parent cache so
                # later batches (any mode) see the warm entry.
                self.cache.put_results(
                    result_key(terms, semantics, algorithm, k),
                    results, partial=stats.partial)
            if stats.partial:
                self.metrics.counter("repro_deadline_hits_total",
                                     {"outcome": "partial"}).inc()
            self._record_query("batch", terms, semantics, algorithm,
                               k, elapsed_ms, stats, None)
            triples[index] = (results, stats, elapsed_ms)

        def submit(target, index, query):
            return target.submit(
                _process_batch_worker,
                (index, query, semantics, k, algorithm, use_cache,
                 deadline))

        try:
            futures = [submit(pool, index, query)
                       for index, query in indexed]
            victims = []
            for future, (index, query) in zip(futures, indexed):
                try:
                    payload = future.result()
                except BrokenExecutor:
                    # Pool-level death dooms every sibling future too.
                    # Defer on_done: each victim completes exactly once
                    # below, via rerun or typed error.
                    victims.append((index, query))
                    continue
                on_done()
                absorb(*payload)
            if victims:
                if raise_on_error:
                    raise WorkerCrashError(
                        "batch worker crashed; %d queries lost with it"
                        % len(victims))
                self.metrics.counter(
                    "repro_batch_pool_rebuilds_total").inc()
                rescue = fresh_pool()
                if own_pool:
                    pool.shutdown(wait=False)
                    pool = rescue  # the outer finally closes it
                poisoned = False
                try:
                    for index, query in victims:
                        exc = payload = None
                        if poisoned:
                            exc = WorkerCrashError(
                                "skipped: an earlier retry crashed the "
                                "rebuilt batch pool", query_index=index)
                        else:
                            try:
                                payload = submit(rescue, index,
                                                 query).result()
                            except BrokenExecutor:
                                poisoned = True
                                exc = WorkerCrashError(
                                    "query crashed the rebuilt batch "
                                    "pool", query_index=index)
                        on_done()
                        if exc is not None:
                            absorb(index, None, None, ExecutionStats(),
                                   0.0, exc)
                        else:
                            absorb(*payload)
                finally:
                    if not own_pool:
                        rescue.shutdown(wait=True)
            return triples
        finally:
            if own_pool:
                pool.shutdown(wait=True)

    def search_stream(self, query: Union[str, Sequence[str], Query],
                      semantics: str = ELCA,
                      deadline: Optional[Union[Deadline, float]] = None,
                      timeout_ms: Optional[float] = None,
                      on_deadline: Optional[str] = None):
        """Yield results best-first, lazily (progressive top-K).

        Each ``next()`` advances the join-based top-K machinery only far
        enough to prove one more result safe; abandoning the generator
        abandons the remaining work.

        A ``deadline`` bounds the stream: under the ``raise`` policy an
        expired budget raises `DeadlineExceeded` from ``next()``; under
        ``partial`` the stream simply ends.  Results yielded before the
        cut are a prefix of the unbounded stream either way.  (No
        thread-local scope is installed for streams -- the generator
        suspends between ``next()`` calls, and a scope left set across
        a ``yield`` would leak into the consumer's unrelated queries;
        the engine checks its deadline parameter instead.)
        """
        deadline = Deadline.coerce(deadline, timeout_ms, on_deadline)
        return TopKKeywordSearch(self.columnar_index,
                                 tracer=self.tracer).stream(
            self._terms(query), semantics, deadline=deadline)

    def explain(self, query: Union[str, Sequence[str], Query],
                semantics: str = ELCA,
                planner: Optional[JoinPlanner] = None,
                trace: bool = False,
                analyze: bool = False,
                shadow: str = "off",
                estimator=None):
        """Per-level trace of the join-based evaluation (a `QueryPlan`).

        Shows the dynamic optimization at work: column sizes,
        cardinality estimates and the merge/index join chosen at each
        level (paper section III-C).  With ``trace=True`` (or when the
        database runs with a live tracer) the plan also carries the
        span tree of the evaluation (``plan.trace``), rendered by
        ``plan.format()``.

        ``analyze=True`` is EXPLAIN ANALYZE (`docs/OBSERVABILITY.md`):
        ``plan.audit`` carries the `repro.obs.audit.PlanAudit` verdict
        -- per-level predicted vs. actual cardinality, q-error and plan
        regret, with ``shadow`` ("off"/"sampled"/"all") really running
        the not-chosen join algorithm for measured regret, and
        ``estimator`` overriding the audited cardinality model.
        """
        from .algorithms.explain import explain as _explain

        tracer = None
        if trace:
            tracer = Tracer()
        elif self.tracer.enabled:
            tracer = self.tracer
        return _explain(self.columnar_index, self._terms(query), semantics,
                        planner, tracer=tracer, analyze=analyze,
                        shadow=shadow, estimator=estimator)

    def _terms(self, query: Union[str, Sequence[str], Query]) -> List[str]:
        if isinstance(query, Query):
            return query.terms
        return Query(query, self.tokenizer).terms

    def _check_terms_exist(self, terms: Sequence[str]) -> None:
        missing = [t for t in terms
                   if self.inverted_index.document_frequency(t) == 0]
        if missing:
            raise EmptyResultError(
                f"query terms with no occurrences: {missing}")

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------

    def _record_query(self, op: str, terms: List[str], semantics: str,
                      algorithm: str, k: Optional[int], elapsed_ms: float,
                      stats: Optional[ExecutionStats],
                      trace_root: Optional[Span],
                      phases: Optional[Dict[str, float]] = None) -> None:
        """Publish one finished query into metrics and the slow log."""
        metrics = self.metrics
        metrics.counter("repro_queries_total", {"op": op}).inc()
        metrics.histogram("repro_query_latency_ms",
                          {"op": op}).observe(elapsed_ms)
        if stats is not None:
            if stats.merge_joins:
                metrics.counter("repro_level_joins_total",
                                {"algorithm": "merge"}).inc(
                    stats.merge_joins)
            if stats.index_joins:
                metrics.counter("repro_level_joins_total",
                                {"algorithm": "index"}).inc(
                    stats.index_joins)
            # Resource-accounting totals (repro.obs.account): published
            # only when the query did physical work, so a cold registry
            # is not littered with zero series.
            if stats.bytes_mapped:
                metrics.counter("repro_query_bytes_mapped_total").inc(
                    stats.bytes_mapped)
            if stats.bytes_copied:
                metrics.counter("repro_query_bytes_copied_total").inc(
                    stats.bytes_copied)
            if stats.cache_bytes_saved:
                metrics.counter("repro_query_bytes_cache_total",
                                {"outcome": "saved"}).inc(
                    stats.cache_bytes_saved)
            if stats.cache_bytes_paid:
                metrics.counter("repro_query_bytes_cache_total",
                                {"outcome": "paid"}).inc(
                    stats.cache_bytes_paid)
            resources = stats.resources or {}
            for outcome, count in resources.get("decode_cache",
                                                {}).items():
                if count:
                    metrics.counter(
                        "repro_query_decode_cache_total",
                        {"outcome": "hit" if outcome == "hits"
                         else "miss"}).inc(count)
            for codec, nbytes in resources.get("by_codec", {}).items():
                metrics.counter("repro_query_bytes_decompressed_total",
                                {"codec": codec}).inc(nbytes)
            for level, count in resources.get("by_level_postings",
                                              {}).items():
                metrics.counter("repro_query_postings_scanned_total",
                                {"level": str(level)}).inc(count)
            for level, nbytes in resources.get("by_level_bytes",
                                               {}).items():
                metrics.counter("repro_query_postings_bytes_total",
                                {"level": str(level)}).inc(nbytes)
        if self.slow_log is not None:
            stats_dict = stats.as_dict() if stats is not None else None
            if stats_dict is not None and stats.resources is not None:
                stats_dict["resources"] = stats.resources
            self.slow_log.maybe_record(
                elapsed_ms, terms, semantics, algorithm, k,
                stats_dict, trace_root,
                phases=phases)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/eviction counters of the postings and result caches."""
        return self.cache.stats()

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """`MetricsRegistry.snapshot` of the registry this database
        publishes into (query latency percentiles, per-level join
        counts, cache hit ratios, batch gauges, ...)."""
        return self.metrics.snapshot()

    def document_frequency(self, term: str) -> int:
        return self.inverted_index.document_frequency(term.lower())

    def __len__(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XMLDatabase nodes={len(self.tree)} depth={self.tree.depth}>"
