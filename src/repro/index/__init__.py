"""Index substrates: tokenizer, Dewey lists, JDewey columns, storage."""

from .tokenizer import Tokenizer, DEFAULT_STOPWORDS
from .inverted import InvertedIndex, Posting, PostingList
from .columnar import Column, ColumnarIndex, ColumnarPostings
from .scored import ColumnCursor, ScoredPostings
from .sparse import SparseColumnIndex
from .lazydisk import IOStats, LazyColumnarIndex, LazyColumnarPostings
from . import compression, storage

__all__ = [
    "Tokenizer",
    "DEFAULT_STOPWORDS",
    "InvertedIndex",
    "Posting",
    "PostingList",
    "Column",
    "ColumnarIndex",
    "ColumnarPostings",
    "ColumnCursor",
    "ScoredPostings",
    "SparseColumnIndex",
    "IOStats",
    "LazyColumnarIndex",
    "LazyColumnarPostings",
    "compression",
    "storage",
]
