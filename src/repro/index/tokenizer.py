"""Tokenization of element text into keyword occurrences.

A node "directly contains" keyword ``w`` when ``w`` appears among the
tokens of the node's own text (descendants' text belongs to the
descendants).  The tokenizer is deliberately simple -- lowercase word
characters, optional stopword removal -- mirroring the Lucene analyzer
role in the paper's setup.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")

DEFAULT_STOPWORDS: FrozenSet[str] = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in",
    "is", "it", "of", "on", "or", "the", "to", "with",
})


class Tokenizer:
    """Configurable text tokenizer.

    Parameters
    ----------
    stopwords:
        Tokens to drop; pass an empty set to keep everything.
    min_length:
        Tokens shorter than this are dropped.
    """

    def __init__(self, stopwords: Iterable[str] = DEFAULT_STOPWORDS,
                 min_length: int = 1):
        self.stopwords = frozenset(stopwords)
        self.min_length = min_length

    def tokens(self, text: str) -> List[str]:
        """Tokens of `text` in order, stopwords and short tokens removed."""
        found = _TOKEN_RE.findall(text.lower())
        return [t for t in found
                if len(t) >= self.min_length and t not in self.stopwords]

    def term_frequencies(self, text: str) -> Dict[str, int]:
        """Token -> occurrence count within `text`."""
        counts: Dict[str, int] = {}
        for token in self.tokens(text):
            counts[token] = counts.get(token, 0) + 1
        return counts

    def query_terms(self, query: str) -> List[str]:
        """Distinct query keywords in first-appearance order.

        Stopwords are *kept* for queries -- a user searching a stopword
        should still match -- but duplicates are collapsed because the
        LCA semantics is set-based.
        """
        seen: Dict[str, None] = {}
        for token in _TOKEN_RE.findall(query.lower()):
            if len(token) >= self.min_length:
                seen.setdefault(token, None)
        return list(seen)
