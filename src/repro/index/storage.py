"""On-disk formats and size accounting (paper Table I).

Implements byte-accurate serialization for the two index families and
size *models* for the baseline structures the paper measures:

* ``join-based IL``  -- columnar JDewey lists, per-column compression
  (section III-D), plus sparse per-column indices.
* ``stack-based IL`` -- document-ordered Dewey lists with the prefix
  compression of Xu & Papakonstantinou [6] (each id stores the length of
  the prefix shared with its predecessor plus the new suffix).
* ``index-based``    -- a single B-tree whose key entries are
  ``(keyword, Dewey id)`` pairs, the BerkeleyDB layout the paper blames
  for the size blow-up.
* ``top-K join IL``  -- the columnar lists plus per-occurrence scores
  and group-by-length headers (section IV-C).
* ``RDIL``           -- the stack IL plus per-keyword B-trees over Dewey
  ids.

The columnar and Dewey serializers round-trip (tests assert equality);
the B-tree numbers are cost models with explicit constants, since the
actual baselines run in memory.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..reliability.checksum import (ALGORITHM_IDS, ALGORITHM_NAMES,
                                    DEFAULT_ALGORITHM, checksum)
from ..reliability.errors import DatabaseCorruptError, DatabaseFormatError
from ..xmltree.dewey import Dewey
from .columnar import ColumnarIndex, ColumnarPostings
from .compression import (SCHEME_IDS, SCHEME_NAMES, V4_CODECS, choose_codec,
                          compress_column, decompress_column, read_varint,
                          varint_size, write_varint)
from .inverted import InvertedIndex, Posting, PostingList
from .sparse import DEFAULT_GRANULARITY, SparseColumnIndex

_MAGIC_COLUMNAR = b"JDXC"
_MAGIC_DEWEY = b"DWIL"

# B-tree cost-model constants (BerkeleyDB-flavoured).
BTREE_ENTRY_OVERHEAD = 12   # per-entry header + leaf pointer bytes
BTREE_FILL_FACTOR = 0.70    # leaf page utilization
BTREE_INTERNAL_FACTOR = 1.10  # internal pages on top of the leaf level
SCORE_BYTES = 2             # quantized per-occurrence score (top-K IL)


# ---------------------------------------------------------------------------
# Columnar (JDewey) serialization
# ---------------------------------------------------------------------------

SCORES_NONE = 0
SCORES_QUANTIZED = 1   # 2-byte fixed point, the Table I size model
SCORES_EXACT = 2       # float64, used by the persistence layer


def serialize_columnar_postings(postings: ColumnarPostings,
                                with_scores: bool = False,
                                score_mode: int = None) -> bytes:
    """Serialize one term's columnar list.

    Layout: term, n_seqs, max_len, the varint column of sequence lengths,
    then each level's compressed column.  The per-level seq ordinals are
    *not* stored: they are implied by the lengths column (a sequence of
    length >= l contributes the next value of column l, in order), which
    is exactly the storage saving of the columnar layout.

    ``score_mode`` is one of SCORES_NONE / SCORES_QUANTIZED /
    SCORES_EXACT; ``with_scores=True`` is shorthand for the quantized
    mode (the on-disk footprint Table I measures).
    """
    if score_mode is None:
        score_mode = SCORES_QUANTIZED if with_scores else SCORES_NONE
    out = bytearray()
    term_bytes = postings.term.encode("utf-8")
    write_varint(out, len(term_bytes))
    out.extend(term_bytes)
    write_varint(out, len(postings.seqs))
    write_varint(out, postings.max_len)
    out.append(score_mode)
    for length in postings.lengths:
        write_varint(out, int(length))
    for level in range(1, postings.max_len + 1):
        column = postings.column(level)
        scheme, payload = compress_column(column.values)
        out.append(0 if scheme == "rle" else 1)
        write_varint(out, len(payload))
        out.extend(payload)
    if score_mode == SCORES_QUANTIZED:
        quantized = np.asarray(postings.scores * 256.0, dtype=np.uint16)
        out.extend(quantized.tobytes())
    elif score_mode == SCORES_EXACT:
        out.extend(np.asarray(postings.scores,
                              dtype=np.float64).tobytes())
    return bytes(out)


def deserialize_columnar_postings(data: bytes, pos: int = 0
                                  ) -> Tuple[ColumnarPostings, int]:
    """Inverse of `serialize_columnar_postings`; returns (postings, next_pos).

    Scores are restored at quantized precision when present, else zero.
    """
    term_len, pos = read_varint(data, pos)
    term = data[pos: pos + term_len].decode("utf-8")
    pos += term_len
    n_seqs, pos = read_varint(data, pos)
    max_len, pos = read_varint(data, pos)
    score_mode = data[pos]
    pos += 1
    lengths: List[int] = []
    for _ in range(n_seqs):
        length, pos = read_varint(data, pos)
        lengths.append(length)
    seqs: List[List[int]] = [[] for _ in range(n_seqs)]
    for level in range(1, max_len + 1):
        scheme_byte = data[pos]
        pos += 1
        payload_len, pos = read_varint(data, pos)
        payload = data[pos: pos + payload_len]
        pos += payload_len
        values = decompress_column("rle" if scheme_byte == 0 else "delta",
                                   payload)
        cursor = 0
        for i in range(n_seqs):
            if lengths[i] >= level:
                seqs[i].append(int(values[cursor]))
                cursor += 1
    scores: List[float]
    if score_mode == SCORES_QUANTIZED:
        raw = np.frombuffer(data, dtype=np.uint16, count=n_seqs, offset=pos)
        pos += 2 * n_seqs
        scores = [float(v) / 256.0 for v in raw]
    elif score_mode == SCORES_EXACT:
        raw = np.frombuffer(data, dtype=np.float64, count=n_seqs,
                            offset=pos)
        pos += 8 * n_seqs
        scores = [float(v) for v in raw]
    elif score_mode == SCORES_NONE:
        scores = [0.0] * n_seqs
    else:
        raise ValueError(f"unknown score mode {score_mode}")
    postings = ColumnarPostings(term, [tuple(s) for s in seqs], scores)
    return postings, pos


def serialize_columnar_index(index: ColumnarIndex,
                             with_scores: bool = False,
                             score_mode: int = None) -> bytes:
    """Serialize every term of a columnar index."""
    out = bytearray(_MAGIC_COLUMNAR)
    terms = index.vocabulary
    write_varint(out, len(terms))
    for term in terms:
        out.extend(serialize_columnar_postings(index.term_postings(term),
                                               with_scores, score_mode))
    return bytes(out)


def deserialize_columnar_index(data: bytes) -> Dict[str, ColumnarPostings]:
    """Load the per-term postings written by `serialize_columnar_index`."""
    if data[:4] != _MAGIC_COLUMNAR:
        raise ValueError("not a columnar index blob")
    pos = 4
    n_terms, pos = read_varint(data, pos)
    result: Dict[str, ColumnarPostings] = {}
    for _ in range(n_terms):
        postings, pos = deserialize_columnar_postings(data, pos)
        result[postings.term] = postings
    return result


# ---------------------------------------------------------------------------
# Dewey (document-ordered) serialization with prefix compression
# ---------------------------------------------------------------------------

def serialize_posting_list(plist: PostingList,
                           score_mode: int = 0) -> bytes:
    """Prefix-compressed Dewey list: (shared_prefix_len, suffix..., tf).

    ``score_mode`` as in `serialize_columnar_postings`; Table I uses
    SCORES_NONE (the baselines score at query time), the persistence
    layer uses SCORES_EXACT.
    """
    out = bytearray()
    term_bytes = plist.term.encode("utf-8")
    write_varint(out, len(term_bytes))
    out.extend(term_bytes)
    write_varint(out, len(plist))
    out.append(score_mode)
    prev: Dewey = ()
    for posting in plist.postings:
        dewey = posting.dewey
        shared = 0
        limit = min(len(prev), len(dewey))
        while shared < limit and prev[shared] == dewey[shared]:
            shared += 1
        write_varint(out, shared)
        write_varint(out, len(dewey) - shared)
        for component in dewey[shared:]:
            write_varint(out, component)
        write_varint(out, posting.tf)
        prev = dewey
    if score_mode == SCORES_QUANTIZED:
        quantized = np.asarray([p.score for p in plist.postings],
                               dtype=np.float64) * 256.0
        out.extend(quantized.astype(np.uint16).tobytes())
    elif score_mode == SCORES_EXACT:
        out.extend(np.asarray([p.score for p in plist.postings],
                              dtype=np.float64).tobytes())
    return bytes(out)


def deserialize_posting_list(data: bytes, pos: int = 0
                             ) -> Tuple[PostingList, int]:
    term_len, pos = read_varint(data, pos)
    term = data[pos: pos + term_len].decode("utf-8")
    pos += term_len
    count, pos = read_varint(data, pos)
    score_mode = data[pos]
    pos += 1
    postings: List[Posting] = []
    prev: Tuple[int, ...] = ()
    for _ in range(count):
        shared, pos = read_varint(data, pos)
        n_suffix, pos = read_varint(data, pos)
        suffix: List[int] = []
        for _ in range(n_suffix):
            component, pos = read_varint(data, pos)
            suffix.append(component)
        tf, pos = read_varint(data, pos)
        dewey = prev[:shared] + tuple(suffix)
        postings.append(Posting(dewey, tf, 0.0))
        prev = dewey
    if score_mode == SCORES_QUANTIZED:
        raw = np.frombuffer(data, dtype=np.uint16, count=count, offset=pos)
        pos += 2 * count
        for posting, value in zip(postings, raw):
            posting.score = float(value) / 256.0
    elif score_mode == SCORES_EXACT:
        raw = np.frombuffer(data, dtype=np.float64, count=count,
                            offset=pos)
        pos += 8 * count
        for posting, value in zip(postings, raw):
            posting.score = float(value)
    elif score_mode != SCORES_NONE:
        raise ValueError(f"unknown score mode {score_mode}")
    return PostingList(term, postings), pos


def serialize_inverted_index(index: InvertedIndex,
                             score_mode: int = 0) -> bytes:
    out = bytearray(_MAGIC_DEWEY)
    terms = index.vocabulary
    write_varint(out, len(terms))
    for term in terms:
        out.extend(serialize_posting_list(index.term_list(term),
                                          score_mode))
    return bytes(out)


def deserialize_inverted_index(data: bytes) -> Dict[str, PostingList]:
    if data[:4] != _MAGIC_DEWEY:
        raise ValueError("not a Dewey inverted-list blob")
    pos = 4
    n_terms, pos = read_varint(data, pos)
    result: Dict[str, PostingList] = {}
    for _ in range(n_terms):
        plist, pos = deserialize_posting_list(data, pos)
        result[plist.term] = plist
    return result


# ---------------------------------------------------------------------------
# Blocked, checksummed containers (persistence format v2)
# ---------------------------------------------------------------------------
#
# Layout: magic(4) | algorithm id(1) | varint n_terms | per-term block.
# Each block is ``varint term_len | term | varint payload_len |
# crc(4, big-endian) | payload`` where the payload is the *unchanged*
# v1 per-term serialization above.  Repeating the term in the frame is
# deliberate: a reader can name the offending keyword of a corrupt
# block without parsing the corrupt payload, and a lazy reader can
# locate a term's bytes without decompressing anything.

_MAGIC_COLUMNAR_BLOCKED = b"JDXB"
_MAGIC_DEWEY_BLOCKED = b"DWIB"

#: Everything a malformed byte stream can make the v1 parsers raise --
#: turned into the typed `DatabaseCorruptError` at this boundary so no
#: raw IndexError/ValueError/MemoryError ever reaches a caller.
_PARSE_ERRORS = (IndexError, KeyError, OverflowError, MemoryError,
                 UnicodeDecodeError, ValueError)


@dataclass(frozen=True)
class BlockRef:
    """Locator for one term's checksummed payload inside a container."""

    term: str
    offset: int        # payload start, as an offset into the container
    length: int
    crc: int


def _serialize_blocked(magic: bytes, blocks: List[Tuple[str, bytes]],
                       algorithm: str) -> bytes:
    if algorithm not in ALGORITHM_IDS:
        raise ValueError(f"unknown checksum algorithm {algorithm!r}; "
                         f"one of {sorted(ALGORITHM_IDS)}")
    out = bytearray(magic)
    out.append(ALGORITHM_IDS[algorithm])
    write_varint(out, len(blocks))
    for term, payload in blocks:
        term_bytes = term.encode("utf-8")
        write_varint(out, len(term_bytes))
        out.extend(term_bytes)
        write_varint(out, len(payload))
        out.extend(checksum(payload, algorithm).to_bytes(4, "big"))
        out.extend(payload)
    return bytes(out)


def scan_blocked_container(data: bytes, magic: bytes,
                           file: str = None
                           ) -> Tuple[str, List[BlockRef]]:
    """Walk a blocked container's framing without touching payloads.

    Returns ``(algorithm_name, refs)``.  Raises `DatabaseFormatError`
    on a wrong magic or unknown algorithm id and `DatabaseCorruptError`
    when the framing runs off the end of the buffer (truncation).
    """
    if data[:4] != magic:
        raise DatabaseFormatError(
            f"bad magic {data[:4]!r} (expected {magic!r})"
            + (f" in {file}" if file else ""))
    if len(data) < 5:
        raise DatabaseCorruptError(
            "container truncated inside the header", file=file)
    algo_id = data[4]
    if algo_id not in ALGORITHM_NAMES:
        raise DatabaseFormatError(
            f"unknown checksum algorithm id {algo_id}"
            + (f" in {file}" if file else ""))
    algorithm = ALGORITHM_NAMES[algo_id]
    refs: List[BlockRef] = []
    try:
        pos = 5
        n_terms, pos = read_varint(data, pos)
        for _ in range(n_terms):
            term_len, pos = read_varint(data, pos)
            term = data[pos: pos + term_len].decode("utf-8")
            if len(data) < pos + term_len:
                raise IndexError("term runs off the end")
            pos += term_len
            payload_len, pos = read_varint(data, pos)
            crc = int.from_bytes(data[pos: pos + 4], "big")
            pos += 4
            if len(data) < pos + payload_len:
                raise IndexError("payload runs off the end")
            refs.append(BlockRef(term, pos, payload_len, crc))
            pos += payload_len
    except _PARSE_ERRORS as exc:
        raise DatabaseCorruptError(
            f"blocked container framing corrupt: {exc}",
            file=file) from exc
    return algorithm, refs


def verify_block(data: bytes, ref: BlockRef, algorithm: str,
                 file: str = None) -> bytes:
    """Return `ref`'s payload after checking its checksum.

    Raises `DatabaseCorruptError` naming the file and keyword on
    mismatch -- the detection point for bit flips and short reads.
    """
    payload = data[ref.offset: ref.offset + ref.length]
    if len(payload) != ref.length or checksum(payload, algorithm) != ref.crc:
        raise DatabaseCorruptError(
            f"checksum mismatch for term {ref.term!r}"
            + (f" in {file}" if file else ""),
            file=file, term=ref.term)
    return payload


class PostingsView:
    """Duck-typed index over a plain ``term -> postings`` dict.

    Every container serializer walks ``index.vocabulary`` and calls
    ``term_postings`` / ``term_list``; the shard writer partitions one
    index into N posting dicts and must serialize each without paying
    for N node-map rebuilds, so this view supplies exactly the two
    members the serializers touch.
    """

    __slots__ = ("_postings",)

    def __init__(self, postings_by_term: Dict[str, object]):
        self._postings = postings_by_term

    @property
    def vocabulary(self) -> List[str]:
        return sorted(self._postings)

    def term_postings(self, term: str):
        return self._postings[term]

    # Dewey containers spell the accessor differently.
    term_list = term_postings


def serialize_columnar_index_blocked(index: ColumnarIndex,
                                     with_scores: bool = False,
                                     score_mode: int = None,
                                     algorithm: str = None) -> bytes:
    """Format-v2 columnar container: v1 per-term payloads, checksummed."""
    algorithm = algorithm if algorithm is not None else DEFAULT_ALGORITHM
    blocks = [
        (term, serialize_columnar_postings(index.term_postings(term),
                                           with_scores, score_mode))
        for term in index.vocabulary
    ]
    return _serialize_blocked(_MAGIC_COLUMNAR_BLOCKED, blocks, algorithm)


def deserialize_columnar_index_blocked(data: bytes, verify: bool = True,
                                       file: str = None
                                       ) -> Dict[str, ColumnarPostings]:
    """Load a format-v2 columnar container, verifying every block."""
    algorithm, refs = scan_blocked_container(
        data, _MAGIC_COLUMNAR_BLOCKED, file=file)
    result: Dict[str, ColumnarPostings] = {}
    for ref in refs:
        payload = (verify_block(data, ref, algorithm, file=file) if verify
                   else data[ref.offset: ref.offset + ref.length])
        try:
            postings, _ = deserialize_columnar_postings(payload, 0)
        except _PARSE_ERRORS as exc:
            raise DatabaseCorruptError(
                f"postings for term {ref.term!r} do not parse: {exc}",
                file=file, term=ref.term) from exc
        result[postings.term] = postings
    return result


def serialize_inverted_index_blocked(index: InvertedIndex,
                                     score_mode: int = 0,
                                     algorithm: str = None) -> bytes:
    """Format-v2 Dewey container: v1 per-term payloads, checksummed."""
    algorithm = algorithm if algorithm is not None else DEFAULT_ALGORITHM
    blocks = [
        (term, serialize_posting_list(index.term_list(term), score_mode))
        for term in index.vocabulary
    ]
    return _serialize_blocked(_MAGIC_DEWEY_BLOCKED, blocks, algorithm)


def deserialize_inverted_index_blocked(data: bytes, verify: bool = True,
                                       file: str = None
                                       ) -> Dict[str, PostingList]:
    """Load a format-v2 Dewey container, verifying every block."""
    algorithm, refs = scan_blocked_container(
        data, _MAGIC_DEWEY_BLOCKED, file=file)
    result: Dict[str, PostingList] = {}
    for ref in refs:
        payload = (verify_block(data, ref, algorithm, file=file) if verify
                   else data[ref.offset: ref.offset + ref.length])
        try:
            plist, _ = deserialize_posting_list(payload, 0)
        except _PARSE_ERRORS as exc:
            raise DatabaseCorruptError(
                f"posting list for term {ref.term!r} does not parse: {exc}",
                file=file, term=ref.term) from exc
        result[plist.term] = plist
    return result


def guarded_deserialize_columnar(data: bytes, file: str = None
                                 ) -> Dict[str, ColumnarPostings]:
    """v1 `deserialize_columnar_index` with typed errors (legacy loads)."""
    try:
        if data[:4] != _MAGIC_COLUMNAR:
            raise DatabaseFormatError(
                f"not a columnar index blob"
                + (f" ({file})" if file else ""))
        return deserialize_columnar_index(data)
    except DatabaseFormatError:
        raise
    except _PARSE_ERRORS as exc:
        raise DatabaseCorruptError(
            f"columnar blob does not parse: {exc}", file=file) from exc


def guarded_deserialize_inverted(data: bytes, file: str = None
                                 ) -> Dict[str, PostingList]:
    """v1 `deserialize_inverted_index` with typed errors (legacy loads)."""
    try:
        if data[:4] != _MAGIC_DEWEY:
            raise DatabaseFormatError(
                f"not a Dewey inverted-list blob"
                + (f" ({file})" if file else ""))
        return deserialize_inverted_index(data)
    except DatabaseFormatError:
        raise
    except _PARSE_ERRORS as exc:
        raise DatabaseCorruptError(
            f"Dewey blob does not parse: {exc}", file=file) from exc


# ---------------------------------------------------------------------------
# Block-aligned container (persistence format v3, zero-copy)
# ---------------------------------------------------------------------------
#
# The v2 payloads interleave varints with column bytes, so every column
# must be *parsed into* existence.  The v3 columnar container instead
# offset-indexes and 8-byte-aligns every region, so a reader holding an
# mmap'd buffer materializes any column as an ``np.frombuffer`` view --
# no intermediate ``bytes`` copy, and forked workers share the pages.
#
# Container layout (all integers little-endian, every frame and payload
# start 8-aligned, pad bytes zero)::
#
#     magic "JDX3" (4) | algorithm id (1) | pad (3) | n_terms u64
#     per term:  u32 term_len | u64 payload_len | u32 crc
#                | term bytes | pad to 8 | payload | pad to 8
#
# Per-term payload (offsets relative to the payload start)::
#
#     0   u64 n_seqs
#     8   u32 max_len
#     12  u32 score_mode
#     16  u64 lengths_off
#     24  u64 scores_off          (0 when score_mode == SCORES_NONE)
#     32  u64 level_offs[max_len]
#     ..  u64 level_lens[max_len]
#     ..  u8  schemes[max_len]    (0 = rle, 1 = delta), pad to 8
#     lengths_off   int64[n_seqs]
#     scores_off    float64[n_seqs] (EXACT) or uint16[n_seqs] (QUANTIZED),
#                   pad to 8
#     level_offs[l] the compressed column of level l+1, pad to 8
#
# The Dewey file of a v3 database stays in the v2 blocked format -- it
# is only read by the eager consistency pass, never on the query path.
#
# Format v4 ("JDX4") keeps this layout byte-for-byte and only widens
# the scheme-byte vocabulary: ids 0-3 (0 = rle, 1 = delta, 2 = varint,
# 3 = for), each column's id chosen by the measured-size adaptive
# selector (`repro.index.compression.choose_codec`).  Readers dispatch
# on the recorded id -- no payload sniffing.

_MAGIC_COLUMNAR_V3 = b"JDX3"
_MAGIC_COLUMNAR_V4 = b"JDX4"
_V3_FILE_HEADER = struct.Struct("<4sB3xQ")      # magic, algo id, n_terms
_V3_FRAME = struct.Struct("<IQI")               # term_len, payload_len, crc
_V3_PAYLOAD_HEADER = struct.Struct("<QIIQQ")    # n_seqs, max_len,
                                                # score_mode, lengths_off,
                                                # scores_off


def _align8(pos: int) -> int:
    return (pos + 7) & ~7


def _encode_column_v3(values) -> Tuple[int, bytes]:
    """v3 column coder: the rle/delta heuristic, ids 0/1."""
    scheme, payload = compress_column(values)
    return (0 if scheme == "rle" else 1), payload


def _encode_column_v4(values) -> Tuple[int, bytes]:
    """v4 column coder: the measured-size adaptive selector, ids 0-3."""
    scheme, payload = choose_codec(values)
    return SCHEME_IDS[scheme], payload


def serialize_columnar_postings_v3(postings: ColumnarPostings,
                                   score_mode: int = SCORES_EXACT) -> bytes:
    """One term's offset-indexed, 8-aligned payload (format v3)."""
    return _serialize_columnar_postings(postings, score_mode,
                                        _encode_column_v3)


def serialize_columnar_postings_v4(postings: ColumnarPostings,
                                   score_mode: int = SCORES_EXACT) -> bytes:
    """One term's payload with v4 adaptive codec selection; layout is
    byte-identical to v3, only the scheme-id vocabulary widens."""
    return _serialize_columnar_postings(postings, score_mode,
                                        _encode_column_v4)


def _serialize_columnar_postings(postings: ColumnarPostings,
                                 score_mode: int,
                                 encode_column) -> bytes:
    n_seqs = len(postings)
    max_len = int(postings.max_len)
    columns: List[bytes] = []
    schemes = bytearray(max_len)
    for level in range(1, max_len + 1):
        scheme_id, payload = encode_column(postings.column(level).values)
        schemes[level - 1] = scheme_id
        columns.append(payload)

    # Two passes: lay out offsets, then fill the preallocated buffer.
    tables_off = _V3_PAYLOAD_HEADER.size
    level_offs_off = tables_off
    level_lens_off = level_offs_off + 8 * max_len
    schemes_off = level_lens_off + 8 * max_len
    lengths_off = _align8(schemes_off + max_len)
    cursor = lengths_off + 8 * n_seqs
    if score_mode == SCORES_EXACT:
        scores_off = cursor
        cursor += 8 * n_seqs
    elif score_mode == SCORES_QUANTIZED:
        scores_off = cursor
        cursor = _align8(cursor + 2 * n_seqs)
    elif score_mode == SCORES_NONE:
        scores_off = 0
    else:
        raise ValueError(f"unknown score mode {score_mode}")
    level_offs: List[int] = []
    for payload in columns:
        level_offs.append(cursor)
        cursor = _align8(cursor + len(payload))

    out = bytearray(cursor)
    _V3_PAYLOAD_HEADER.pack_into(out, 0, n_seqs, max_len, score_mode,
                                 lengths_off, scores_off)
    out[level_offs_off: level_offs_off + 8 * max_len] = np.asarray(
        level_offs, dtype=np.uint64).tobytes()
    out[level_lens_off: level_lens_off + 8 * max_len] = np.asarray(
        [len(p) for p in columns], dtype=np.uint64).tobytes()
    out[schemes_off: schemes_off + max_len] = schemes
    lengths = np.asarray(postings.lengths, dtype=np.int64).tobytes()
    out[lengths_off: lengths_off + len(lengths)] = lengths
    if score_mode == SCORES_EXACT:
        raw = np.asarray(postings.scores, dtype=np.float64).tobytes()
        out[scores_off: scores_off + len(raw)] = raw
    elif score_mode == SCORES_QUANTIZED:
        raw = np.asarray(np.asarray(postings.scores) * 256.0,
                         dtype=np.uint16).tobytes()
        out[scores_off: scores_off + len(raw)] = raw
    for off, payload in zip(level_offs, columns):
        out[off: off + len(payload)] = payload
    return bytes(out)


def serialize_columnar_index_v3(index: ColumnarIndex,
                                score_mode: int = SCORES_EXACT,
                                algorithm: str = None) -> bytes:
    """Format-v3 columnar container: aligned frames, checksummed."""
    return _serialize_columnar_index(index, score_mode, algorithm,
                                     _MAGIC_COLUMNAR_V3,
                                     serialize_columnar_postings_v3)


def serialize_columnar_index_v4(index: ColumnarIndex,
                                score_mode: int = SCORES_EXACT,
                                algorithm: str = None) -> bytes:
    """Format-v4 columnar container: v3 framing under the ``JDX4``
    magic, per-column codecs chosen by measured encoded size."""
    return _serialize_columnar_index(index, score_mode, algorithm,
                                     _MAGIC_COLUMNAR_V4,
                                     serialize_columnar_postings_v4)


def _serialize_columnar_index(index: ColumnarIndex, score_mode: int,
                              algorithm, magic: bytes,
                              serialize_postings) -> bytes:
    algorithm = algorithm if algorithm is not None else DEFAULT_ALGORITHM
    if algorithm not in ALGORITHM_IDS:
        raise ValueError(f"unknown checksum algorithm {algorithm!r}; "
                         f"one of {sorted(ALGORITHM_IDS)}")
    terms = index.vocabulary
    out = bytearray(_V3_FILE_HEADER.pack(magic,
                                         ALGORITHM_IDS[algorithm],
                                         len(terms)))
    for term in terms:
        payload = serialize_postings(index.term_postings(term), score_mode)
        term_bytes = term.encode("utf-8")
        out.extend(b"\x00" * (_align8(len(out)) - len(out)))
        out.extend(_V3_FRAME.pack(len(term_bytes), len(payload),
                                  checksum(payload, algorithm)))
        out.extend(term_bytes)
        out.extend(b"\x00" * (_align8(len(out)) - len(out)))
        out.extend(payload)
    return bytes(out)


def scan_v3_container(data, file: str = None
                      ) -> Tuple[str, List[BlockRef]]:
    """Walk a v3 container's framing without touching payloads.

    `data` may be ``bytes`` or a ``memoryview`` over an mmap; nothing
    here copies a payload.  Returns ``(algorithm_name, refs)`` with
    each ref's offset 8-aligned into `data`.
    """
    return _scan_container(data, _MAGIC_COLUMNAR_V3, file)


def scan_v4_container(data, file: str = None
                      ) -> Tuple[str, List[BlockRef]]:
    """Walk a v4 container's framing (identical to v3 framing)."""
    return _scan_container(data, _MAGIC_COLUMNAR_V4, file)


def _scan_container(data, magic: bytes, file: str = None
                    ) -> Tuple[str, List[BlockRef]]:
    if bytes(data[:4]) != magic:
        raise DatabaseFormatError(
            f"bad magic {bytes(data[:4])!r} "
            f"(expected {magic!r})"
            + (f" in {file}" if file else ""))
    if len(data) < _V3_FILE_HEADER.size:
        raise DatabaseCorruptError(
            "container truncated inside the header", file=file)
    _, algo_id, n_terms = _V3_FILE_HEADER.unpack_from(data, 0)
    if algo_id not in ALGORITHM_NAMES:
        raise DatabaseFormatError(
            f"unknown checksum algorithm id {algo_id}"
            + (f" in {file}" if file else ""))
    algorithm = ALGORITHM_NAMES[algo_id]
    refs: List[BlockRef] = []
    try:
        pos = _V3_FILE_HEADER.size
        for _ in range(n_terms):
            pos = _align8(pos)
            if len(data) < pos + _V3_FRAME.size:
                raise IndexError("frame runs off the end")
            term_len, payload_len, crc = _V3_FRAME.unpack_from(data, pos)
            pos += _V3_FRAME.size
            if len(data) < pos + term_len:
                raise IndexError("term runs off the end")
            term = bytes(data[pos: pos + term_len]).decode("utf-8")
            pos = _align8(pos + term_len)
            if len(data) < pos + payload_len:
                raise IndexError("payload runs off the end")
            refs.append(BlockRef(term, pos, payload_len, crc))
            pos += payload_len
    except (_PARSE_ERRORS + (struct.error,)) as exc:
        raise DatabaseCorruptError(
            f"v{magic[3:4].decode()} container framing corrupt: {exc}",
            file=file) from exc
    return algorithm, refs


def _scheme_name_v3(scheme_id: int) -> str:
    return "rle" if scheme_id == 0 else "delta"


def _scheme_name_v4(scheme_id: int) -> str:
    name = SCHEME_NAMES.get(int(scheme_id))
    if name is None:
        raise ValueError(f"unknown v4 scheme id {scheme_id}")
    return name


def parse_v3_payload(term: str, payload, file: str = None):
    """Decode a v3 per-term payload into zero-copy column views.

    `payload` is any buffer (typically a memoryview slice of an mmap).
    Returns ``(lengths, scores, level_payloads)`` where `lengths` is an
    ``int64`` view, `scores` a ``float64`` array (a view in EXACT mode,
    a small dequantized copy in QUANTIZED mode, zeros in NONE mode) and
    `level_payloads` a list of ``(scheme, uint8 view)`` pairs -- the
    shape `LazyColumnarPostings` consumes.
    """
    return _parse_payload(term, payload, _scheme_name_v3, file)


def parse_v4_payload(term: str, payload, file: str = None):
    """Decode a v4 per-term payload: v3 parsing with the widened
    scheme-id vocabulary (unknown ids raise `DatabaseCorruptError`)."""
    return _parse_payload(term, payload, _scheme_name_v4, file)


def _parse_payload(term: str, payload, scheme_name, file: str = None):
    try:
        (n_seqs, max_len, score_mode, lengths_off,
         scores_off) = _V3_PAYLOAD_HEADER.unpack_from(payload, 0)
        tables = _V3_PAYLOAD_HEADER.size
        level_offs = np.frombuffer(payload, dtype=np.uint64,
                                   count=max_len, offset=tables)
        level_lens = np.frombuffer(payload, dtype=np.uint64,
                                   count=max_len,
                                   offset=tables + 8 * max_len)
        schemes = np.frombuffer(payload, dtype=np.uint8, count=max_len,
                                offset=tables + 16 * max_len)
        lengths = np.frombuffer(payload, dtype=np.int64, count=n_seqs,
                                offset=lengths_off)
        if score_mode == SCORES_EXACT:
            scores = np.frombuffer(payload, dtype=np.float64,
                                   count=n_seqs, offset=scores_off)
        elif score_mode == SCORES_QUANTIZED:
            raw = np.frombuffer(payload, dtype=np.uint16, count=n_seqs,
                                offset=scores_off)
            scores = raw.astype(np.float64) / 256.0
        elif score_mode == SCORES_NONE:
            scores = np.zeros(n_seqs, dtype=np.float64)
        else:
            raise ValueError(f"unknown score mode {score_mode}")
        level_payloads = []
        for level in range(max_len):
            off = int(level_offs[level])
            length = int(level_lens[level])
            if off + length > len(payload):
                raise IndexError("column runs off the payload")
            column = np.frombuffer(payload, dtype=np.uint8, count=length,
                                   offset=off)
            level_payloads.append((scheme_name(schemes[level]), column))
    except (_PARSE_ERRORS + (struct.error,)) as exc:
        raise DatabaseCorruptError(
            f"postings for term {term!r} do not parse: {exc}",
            file=file, term=term) from exc
    return lengths, scores, level_payloads


def deserialize_columnar_index_v3(data, verify: bool = True,
                                  file: str = None,
                                  vectorized: bool = True
                                  ) -> Dict[str, ColumnarPostings]:
    """Eagerly load a format-v3 container (the ``lazy=False`` path).

    The eager path rebuilds full `ColumnarPostings` objects, so it does
    copy -- zero-copy loading is the lazy reader's job
    (`repro.index.lazydisk.LazyColumnarIndex`).
    """
    return _deserialize_columnar_index(data, scan_v3_container,
                                       parse_v3_payload, verify, file,
                                       vectorized)


def deserialize_columnar_index_v4(data, verify: bool = True,
                                  file: str = None,
                                  vectorized: bool = True
                                  ) -> Dict[str, ColumnarPostings]:
    """Eagerly load a format-v4 container (the ``lazy=False`` path)."""
    return _deserialize_columnar_index(data, scan_v4_container,
                                       parse_v4_payload, verify, file,
                                       vectorized)


def _deserialize_columnar_index(data, scan_container, parse_payload,
                                verify: bool, file, vectorized: bool
                                ) -> Dict[str, ColumnarPostings]:
    algorithm, refs = scan_container(data, file=file)
    result: Dict[str, ColumnarPostings] = {}
    for ref in refs:
        payload = (verify_block(data, ref, algorithm, file=file) if verify
                   else data[ref.offset: ref.offset + ref.length])
        lengths, scores, level_payloads = parse_payload(
            ref.term, payload, file=file)
        try:
            seqs: List[List[int]] = [[] for _ in range(len(lengths))]
            for level, (scheme, column) in enumerate(level_payloads,
                                                     start=1):
                values = decompress_column(scheme, column,
                                           vectorized=vectorized)
                cursor = 0
                for i, length in enumerate(lengths):
                    if length >= level:
                        seqs[i].append(int(values[cursor]))
                        cursor += 1
        except _PARSE_ERRORS as exc:
            raise DatabaseCorruptError(
                f"postings for term {ref.term!r} do not parse: {exc}",
                file=file, term=ref.term) from exc
        result[ref.term] = ColumnarPostings(
            ref.term, [tuple(s) for s in seqs],
            [float(s) for s in scores])
    return result


# ---------------------------------------------------------------------------
# Size accounting (Table I)
# ---------------------------------------------------------------------------

@dataclass
class IndexSizeReport:
    """Byte sizes of every structure Table I compares."""

    join_based_il: int = 0
    join_based_sparse: int = 0
    stack_based_il: int = 0
    index_based_btree: int = 0
    topk_join_il: int = 0
    rdil_il: int = 0
    rdil_btree: int = 0
    per_term: Dict[str, int] = field(default_factory=dict)

    def as_rows(self) -> List[Tuple[str, int]]:
        return [
            ("join-based IL", self.join_based_il),
            ("join-based sparse", self.join_based_sparse),
            ("stack-based IL", self.stack_based_il),
            ("index-based B-tree", self.index_based_btree),
            ("top-K join IL", self.topk_join_il),
            ("RDIL IL", self.rdil_il),
            ("RDIL B-tree", self.rdil_btree),
        ]


def _btree_size(total_key_bytes: int, n_entries: int) -> int:
    leaf = (total_key_bytes + n_entries * BTREE_ENTRY_OVERHEAD)
    return int(leaf / BTREE_FILL_FACTOR * BTREE_INTERNAL_FACTOR)


def measure_sizes(columnar: ColumnarIndex, inverted: InvertedIndex,
                  granularity: int = DEFAULT_GRANULARITY) -> IndexSizeReport:
    """Compute every Table I cell for one document."""
    report = IndexSizeReport()
    for term in columnar.vocabulary:
        postings = columnar.term_postings(term)
        blob = serialize_columnar_postings(postings, with_scores=False)
        report.join_based_il += len(blob)
        report.per_term[term] = len(blob)
        scored_blob = serialize_columnar_postings(postings, with_scores=True)
        # Group-by-length headers: one (length, count) varint pair per group.
        group_header = sum(
            varint_size(int(length)) + varint_size(int(count))
            for length, count in zip(*np.unique(postings.lengths,
                                                return_counts=True)))
        report.topk_join_il += len(scored_blob) + group_header
        for level in range(1, postings.max_len + 1):
            column = postings.column(level)
            sparse = SparseColumnIndex(column.distinct, granularity)
            report.join_based_sparse += sparse.size_bytes()

    btree_key_bytes = 0
    btree_entries = 0
    rdil_key_bytes = 0
    for term in inverted.vocabulary:
        plist = inverted.term_list(term)
        report.stack_based_il += len(serialize_posting_list(plist))
        term_bytes = len(term.encode("utf-8"))
        for posting in plist.postings:
            dewey_bytes = sum(varint_size(c) for c in posting.dewey)
            # Index-based baseline: the key entry repeats the keyword.
            btree_key_bytes += term_bytes + dewey_bytes
            rdil_key_bytes += dewey_bytes
            btree_entries += 1
    report.index_based_btree = _btree_size(btree_key_bytes, btree_entries)
    report.rdil_il = report.stack_based_il
    report.rdil_btree = _btree_size(rdil_key_bytes, btree_entries)
    return report
