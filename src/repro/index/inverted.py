"""Document-ordered Dewey inverted index.

This is the substrate of the three baselines: the stack-based algorithm
scans these lists in document order, the index-based algorithm binary-
searches them, and RDIL pairs them with a score-ordered view.  Each
posting records the occurrence node's Dewey id, term frequency and local
score ``g(v, w)``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..scoring.ranking import RankingModel
from ..xmltree.dewey import Dewey, subtree_upper_bound
from ..xmltree.tree import Node, XMLTree
from .tokenizer import Tokenizer


@dataclass
class Posting:
    """One keyword occurrence: a node that directly contains the term."""

    dewey: Dewey
    tf: int
    score: float

    @property
    def level(self) -> int:
        return len(self.dewey)


@dataclass
class PostingList:
    """All occurrences of one term, sorted in document order.

    The list is immutable once built; `deweys` is cached because the
    index-based and RDIL baselines binary-search it constantly.
    """

    term: str
    postings: List[Posting] = field(default_factory=list)
    _deweys: Optional[List[Dewey]] = field(default=None, repr=False,
                                           compare=False)

    def __len__(self) -> int:
        return len(self.postings)

    @property
    def deweys(self) -> List[Dewey]:
        if self._deweys is None or len(self._deweys) != len(self.postings):
            self._deweys = [p.dewey for p in self.postings]
        return self._deweys

    def max_score(self) -> float:
        return max((p.score for p in self.postings), default=0.0)

    def descendants_range(self, dewey: Sequence[int]) -> Tuple[int, int]:
        """Index range [lo, hi) of postings inside `dewey`'s subtree."""
        low = tuple(dewey)
        high = subtree_upper_bound(dewey)
        keys = self.deweys
        return (bisect.bisect_left(keys, low), bisect.bisect_left(keys, high))

    def has_descendant(self, dewey: Sequence[int]) -> bool:
        lo, hi = self.descendants_range(dewey)
        return hi > lo

    def neighbours(self, dewey: Sequence[int]
                   ) -> Tuple[Optional[Posting], Optional[Posting]]:
        """Closest postings left/right of `dewey` in document order."""
        keys = self.deweys
        target = tuple(dewey)
        pos = bisect.bisect_left(keys, target)
        if pos < len(keys) and keys[pos] == target:
            posting = self.postings[pos]
            return posting, posting
        left = self.postings[pos - 1] if pos > 0 else None
        right = self.postings[pos] if pos < len(keys) else None
        return left, right

    def by_score_desc(self) -> List[Posting]:
        """Postings sorted by local score, best first (RDIL's view)."""
        return sorted(self.postings, key=lambda p: (-p.score, p.dewey))


class InvertedIndex:
    """Dewey inverted index over one document.

    Built once per database; `term_list` returns the per-term posting
    list (empty list for unknown terms, so k-keyword queries degrade
    gracefully to empty results).
    """

    def __init__(self, tree: XMLTree, tokenizer: Optional[Tokenizer] = None,
                 ranking: Optional[RankingModel] = None):
        self.tree = tree
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.ranking = ranking if ranking is not None else RankingModel()
        self._lists: Dict[str, PostingList] = {}
        self.n_docs = 0
        self._build()

    @classmethod
    def from_lists(cls, tree: XMLTree, lists: Dict[str, PostingList],
                   tokenizer: Optional[Tokenizer] = None,
                   ranking: Optional[RankingModel] = None,
                   n_docs: int = 0) -> "InvertedIndex":
        """Wrap pre-built posting lists (the persistence load path)."""
        index = cls.__new__(cls)
        index.tree = tree
        index.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        index.ranking = ranking if ranking is not None else RankingModel()
        index._lists = dict(lists)
        index.n_docs = n_docs
        return index

    def _build(self) -> None:
        # First pass: raw term frequencies per node, document frequencies.
        raw: Dict[str, List[Tuple[Dewey, int, int]]] = {}
        for node in self.tree.iter_document_order():
            if not node.text:
                continue
            counts = self.tokenizer.term_frequencies(node.text)
            if not counts:
                continue
            self.n_docs += 1
            node_tokens = sum(counts.values())
            for term, tf in counts.items():
                raw.setdefault(term, []).append((node.dewey, tf, node_tokens))
        # Second pass: local scores need df, so they come after the scan.
        for term, entries in raw.items():
            df = len(entries)
            postings = [
                Posting(dewey, tf,
                        self.ranking.scorer.score(tf, df, self.n_docs, ntok))
                for dewey, tf, ntok in entries
            ]
            self._lists[term] = PostingList(term, postings)

    def __contains__(self, term: str) -> bool:
        return term in self._lists

    @property
    def vocabulary(self) -> List[str]:
        return sorted(self._lists)

    def term_list(self, term: str) -> PostingList:
        existing = self._lists.get(term)
        if existing is not None:
            return existing
        return PostingList(term, [])

    def document_frequency(self, term: str) -> int:
        return len(self.term_list(term))

    def query_lists(self, terms: Iterable[str]) -> List[PostingList]:
        """Posting lists for a query, ordered shortest first.

        The shortest-first order is the paper's left-deep join ordering
        (section III-C) and the driver choice of the index-based
        baseline.
        """
        lists = [self.term_list(t) for t in terms]
        lists.sort(key=len)
        return lists
