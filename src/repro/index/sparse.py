"""Sparse per-column indices (paper section III-C / Table I).

The index join probes a column for individual JDewey numbers.  Columns
are sorted, so conceptually no index is needed; in practice the paper
builds *sparse* indices -- every ``granularity``-th distinct value plus
its offset -- so a probe touches one small block instead of the whole
column.  The in-memory execution uses `numpy.searchsorted` directly; the
sparse index exists to (a) model the on-disk probe path faithfully and
(b) account for the "sparse" rows of Table I.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .compression import varint_size

DEFAULT_GRANULARITY = 64


class SparseColumnIndex:
    """Every ``granularity``-th distinct value of a column, with offsets."""

    def __init__(self, distinct: np.ndarray,
                 granularity: int = DEFAULT_GRANULARITY):
        if granularity < 1:
            raise ValueError("granularity must be positive")
        self.granularity = granularity
        self.keys = distinct[::granularity].copy()
        self.offsets = np.arange(0, len(distinct), granularity, dtype=np.int64)
        self._n_distinct = len(distinct)

    def __len__(self) -> int:
        return len(self.keys)

    def probe_block(self, value: int) -> Tuple[int, int]:
        """Distinct-array range [lo, hi) that could contain `value`."""
        if len(self.keys) == 0:
            return 0, 0
        i = int(np.searchsorted(self.keys, value, side="right")) - 1
        if i < 0:
            return 0, 0
        lo = int(self.offsets[i])
        hi = min(lo + self.granularity, self._n_distinct)
        return lo, hi

    def lookup(self, distinct: np.ndarray, value: int) -> Optional[int]:
        """Position of `value` in `distinct` via the sparse block, or None.

        This is the disk-faithful probe: one sparse-index search plus a
        binary search within a single block.
        """
        lo, hi = self.probe_block(value)
        pos = lo + int(np.searchsorted(distinct[lo:hi], value))
        if pos < hi and distinct[pos] == value:
            return pos
        return None

    def size_bytes(self) -> int:
        """Serialized size: delta-coded keys plus fixed-width offsets."""
        total = 0
        prev = 0
        for key in self.keys:
            total += varint_size(int(key) - prev)
            prev = int(key)
        total += 4 * len(self.offsets)
        return total
