"""Disk-resident columnar lists with per-column lazy decompression.

The paper stores inverted lists vertically precisely so that query
evaluation touches one column at a time: "the algorithm does not read
the whole JDewey sequences from the disk at once ... this would save
disk I/O when the XML tree is deep and some keywords only appear at
high levels" (section III-B).

`LazyColumnarPostings` keeps each level's *compressed* payload and
decompresses a column only on first access; `IOStats` counts the
columns and bytes actually touched, which is the currency of the
section III-B claim (asserted in the lazy-I/O ablation benchmark).
`LazyColumnarIndex` serves a whole vocabulary from one serialized blob
(the format written by `storage.serialize_columnar_index`), parsing
per-term payloads up front but deferring all decompression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.account import active_account
from ..obs.profiler import profile_phase
from ..reliability.deadline import check_active
from ..reliability.errors import DatabaseCorruptError, DatabaseFormatError
from ..scoring.ranking import RankingModel
from ..xmltree.tree import Node, XMLTree
from .columnar import Column, ColumnarPostings
from .compression import decompress_column, read_varint
from .storage import (_MAGIC_COLUMNAR, _MAGIC_COLUMNAR_BLOCKED,
                      _MAGIC_COLUMNAR_V3, _MAGIC_COLUMNAR_V4,
                      _PARSE_ERRORS, BlockRef, parse_v3_payload,
                      parse_v4_payload, scan_blocked_container,
                      scan_v3_container, scan_v4_container, verify_block)
from .tokenizer import Tokenizer


@dataclass
class IOStats:
    """Columns and bytes decompressed since construction / reset."""

    columns_read: int = 0
    compressed_bytes_read: int = 0
    per_level: Dict[int, int] = field(default_factory=dict)

    def record(self, level: int, payload_size: int) -> None:
        self.columns_read += 1
        self.compressed_bytes_read += payload_size
        self.per_level[level] = self.per_level.get(level, 0) + 1

    def reset(self) -> None:
        self.columns_read = 0
        self.compressed_bytes_read = 0
        self.per_level.clear()


class LazyColumnarPostings(ColumnarPostings):
    """One term's columnar list backed by compressed per-level payloads.

    Columns decompress on first access and are cached; the sequence-of-
    tuples view (`seqs`) is never materialized -- callers that need a
    number use `value_at`, which resolves through the column.
    """

    def __init__(self, term: str, lengths: Sequence[int],
                 level_payloads: List[Tuple[str, bytes]],
                 scores: Sequence[float],
                 io_stats: Optional[IOStats] = None,
                 vectorized: bool = True, metrics=None,
                 decoded_cache=None, cache_ns: str = ""):
        # Deliberately *not* calling super().__init__: the whole point
        # is to avoid building `seqs`.  When backed by a format-v3 mmap
        # the lengths/scores/payload buffers are read-only numpy views
        # into the mapping; `np.asarray` keeps them view-shaped.
        self.term = term
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self.scores = np.asarray(scores, dtype=np.float64)
        self.max_len = int(self.lengths.max()) if len(self.lengths) else 0
        self._level_payloads = level_payloads
        self._columns: Dict[int, Column] = {}
        self.io = io_stats if io_stats is not None else IOStats()
        self.vectorized = vectorized
        self.metrics = metrics
        # Optional shared `cache.DecodedColumnCache`.  When present it
        # replaces the unbounded per-postings `_columns` dict for the
        # payload-bearing levels: decoded columns live in one bounded
        # LRU keyed (namespace, term, level) instead of being pinned
        # here forever.  Empty columns (level > max_len) stay local --
        # they cost nothing and need no eviction.
        self._decoded_cache = decoded_cache
        self._cache_ns = cache_ns

    @property
    def seqs(self):
        raise NotImplementedError(
            "disk-backed postings do not materialize sequences; use "
            "column(level) / value_at(ordinal, level)")

    def __len__(self) -> int:
        return len(self.lengths)

    def column(self, level: int) -> Column:
        if level < 1:
            raise ValueError("levels are 1-based")
        cached = self._columns.get(level)
        if cached is not None:
            return cached
        shared = (self._decoded_cache
                  if self._decoded_cache is not None
                  and level <= self.max_len else None)
        if shared is not None:
            key = (self._cache_ns, self.term, level)
            hit = shared.get(key)
            if hit is not None:
                account = active_account()
                if account is not None:
                    account.record_decode_cache(
                        True,
                        int(hit.values.nbytes) + int(hit.seq_idx.nbytes))
                return hit
        mask = self.lengths >= level
        seq_idx = np.nonzero(mask)[0].astype(np.int64)
        if level > self.max_len:
            values = np.empty(0, dtype=np.int64)
        else:
            # The lazy index's "disk read": poll the scoped deadline at
            # every posting fetch, so a budgeted query cannot stall
            # inside a long decompression chain (a getattr + None test
            # when no deadline is active).
            check_active()
            scheme, payload = self._level_payloads[level - 1]
            self.io.record(level, len(payload))
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_decode_bytes_total",
                    {"decoder": "vectorized" if self.vectorized
                     else "scalar"}).inc(len(payload))
            with profile_phase("decompress"):
                values = decompress_column(scheme, payload,
                                           vectorized=self.vectorized)
            account = active_account()
            if account is not None:
                # v3 payloads are zero-copy views (numpy/memoryview
                # over the mmap); v1/v2 payloads are bytes copies.
                account.record_column(
                    level, scheme, len(payload), int(values.nbytes),
                    len(values),
                    not isinstance(payload, (bytes, bytearray)))
        column = Column(level, values, seq_idx)
        if shared is not None:
            nbytes = int(values.nbytes) + int(seq_idx.nbytes)
            account = active_account()
            if account is not None:
                account.record_decode_cache(False, nbytes)
            shared.put(key, column, nbytes)
        else:
            self._columns[level] = column
        return column

    def value_at(self, ordinal: int, level: int) -> int:
        column = self.column(level)
        pos = int(np.searchsorted(column.seq_idx, ordinal))
        return int(column.values[pos])


def parse_lazy_postings(data: bytes, pos: int = 0,
                        io_stats: Optional[IOStats] = None,
                        vectorized: bool = True, metrics=None,
                        decoded_cache=None, cache_ns: str = ""
                        ) -> Tuple[LazyColumnarPostings, int]:
    """Parse one term written by `storage.serialize_columnar_postings`,
    keeping the column payloads compressed."""
    term_len, pos = read_varint(data, pos)
    term = data[pos: pos + term_len].decode("utf-8")
    pos += term_len
    n_seqs, pos = read_varint(data, pos)
    max_len, pos = read_varint(data, pos)
    score_mode = data[pos]
    pos += 1
    lengths: List[int] = []
    for _ in range(n_seqs):
        length, pos = read_varint(data, pos)
        lengths.append(length)
    payloads: List[Tuple[str, bytes]] = []
    for _level in range(1, max_len + 1):
        scheme = "rle" if data[pos] == 0 else "delta"
        pos += 1
        payload_len, pos = read_varint(data, pos)
        payloads.append((scheme, data[pos: pos + payload_len]))
        pos += payload_len
    if score_mode == 1:
        raw = np.frombuffer(data, dtype=np.uint16, count=n_seqs, offset=pos)
        pos += 2 * n_seqs
        scores = raw.astype(np.float64) / 256.0
    elif score_mode == 2:
        scores = np.frombuffer(data, dtype=np.float64, count=n_seqs,
                               offset=pos).copy()
        pos += 8 * n_seqs
    elif score_mode == 0:
        scores = np.zeros(n_seqs, dtype=np.float64)
    else:
        raise ValueError(f"unknown score mode {score_mode}")
    return LazyColumnarPostings(term, lengths, payloads, scores,
                                io_stats, vectorized=vectorized,
                                metrics=metrics,
                                decoded_cache=decoded_cache,
                                cache_ns=cache_ns), pos


def parse_lazy_postings_v3(term: str, payload,
                           io_stats: Optional[IOStats] = None,
                           vectorized: bool = True, metrics=None,
                           file: Optional[str] = None,
                           decoded_cache=None, cache_ns: str = ""
                           ) -> LazyColumnarPostings:
    """Wrap one format-v3 payload (a memoryview slice of the mmap) as
    lazy postings whose lengths/scores/columns are zero-copy views."""
    lengths, scores, level_payloads = parse_v3_payload(term, payload,
                                                       file=file)
    return LazyColumnarPostings(term, lengths, level_payloads, scores,
                                io_stats, vectorized=vectorized,
                                metrics=metrics,
                                decoded_cache=decoded_cache,
                                cache_ns=cache_ns)


def parse_lazy_postings_v4(term: str, payload,
                           io_stats: Optional[IOStats] = None,
                           vectorized: bool = True, metrics=None,
                           file: Optional[str] = None,
                           decoded_cache=None, cache_ns: str = ""
                           ) -> LazyColumnarPostings:
    """Wrap one format-v4 payload as zero-copy lazy postings."""
    lengths, scores, level_payloads = parse_v4_payload(term, payload,
                                                       file=file)
    return LazyColumnarPostings(term, lengths, level_payloads, scores,
                                io_stats, vectorized=vectorized,
                                metrics=metrics,
                                decoded_cache=decoded_cache,
                                cache_ns=cache_ns)


class LazyColumnarIndex:
    """A `ColumnarIndex`-compatible view over one serialized blob.

    Per-term *framing* is parsed eagerly (cheap varint walk); column
    payloads stay compressed until a query touches them.  One shared
    `IOStats` instrument records every decompression.

    Accepts the bare v1 blob (``JDXC``), the checksummed blocked v2
    container (``JDXB``) and the aligned v3/v4 containers (``JDX3`` /
    ``JDX4``) -- the latter usually as a `reliability.io.MappedFile`,
    in which case every column materializes as a zero-copy view over
    the mapping.
    For v2/v3 the ``verify`` mode controls when block checksums are
    checked:

    * ``"lazy"`` (default) -- on a term's first touch, right before its
      payload is parsed.  Matches the lazy-I/O design: a query only
      pays for the integrity of the bytes it actually reads.
    * ``"eager"`` -- every block at construction (column payloads still
      decompress lazily).
    * ``"off"``  -- never (benchmarking / recovery tooling).

    A failed check raises `DatabaseCorruptError` naming the source file
    and the offending keyword, and bumps
    ``repro_checksum_failures_total{file=...}`` when a metrics registry
    is wired in.
    """

    def __init__(self, blob, tree: XMLTree,
                 tokenizer: Optional[Tokenizer] = None,
                 ranking: Optional[RankingModel] = None,
                 verify: str = "lazy", source: Optional[str] = None,
                 metrics=None, vectorized: bool = True,
                 decoded_cache=None):
        if verify not in ("lazy", "eager", "off"):
            raise ValueError(f"unknown verify mode {verify!r}; "
                             "one of ('lazy', 'eager', 'off')")
        self.tree = tree
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.ranking = ranking if ranking is not None else RankingModel()
        self.io = IOStats()
        self.verify = verify
        self.source = source
        self.metrics = metrics
        self.vectorized = vectorized
        # Shared decoded-column cache (see `cache.DecodedColumnCache`).
        # The namespace keeps keys distinct when one cache serves
        # several indexes (e.g. the shards of one database).
        self._decoded_cache = decoded_cache
        self._cache_ns = source if source else f"idx-{id(self):x}"
        # `blob` may be bytes or a `reliability.io.MappedFile`; holding
        # the backing object here is what keeps the mmap (and every
        # numpy view into it) alive for the index's lifetime.
        self._backing = blob
        self._blob = blob.view if hasattr(blob, "view") else blob
        self._postings: Dict[str, LazyColumnarPostings] = {}
        self._blocks: Dict[str, BlockRef] = {}
        self._algorithm: Optional[str] = None
        self._format = 0
        magic = bytes(self._blob[:4])
        if magic == _MAGIC_COLUMNAR:
            blob = self._blob
            pos = 4
            n_terms, pos = read_varint(blob, pos)
            for _ in range(n_terms):
                postings, pos = parse_lazy_postings(
                    blob, pos, self.io, vectorized=vectorized,
                    metrics=metrics, decoded_cache=decoded_cache,
                    cache_ns=self._cache_ns)
                self._postings[postings.term] = postings
        elif magic == _MAGIC_COLUMNAR_BLOCKED:
            self._format = 2
            self._algorithm, refs = scan_blocked_container(
                self._blob, _MAGIC_COLUMNAR_BLOCKED, file=source)
            self._blocks = {ref.term: ref for ref in refs}
            if verify == "eager":
                for term in list(self._blocks):
                    self._parse_block(term)
        elif magic == _MAGIC_COLUMNAR_V3:
            self._format = 3
            self._algorithm, refs = scan_v3_container(
                self._blob, file=source)
            self._blocks = {ref.term: ref for ref in refs}
            if verify == "eager":
                for term in list(self._blocks):
                    self._parse_block(term)
        elif magic == _MAGIC_COLUMNAR_V4:
            self._format = 4
            self._algorithm, refs = scan_v4_container(
                self._blob, file=source)
            self._blocks = {ref.term: ref for ref in refs}
            if verify == "eager":
                for term in list(self._blocks):
                    self._parse_block(term)
        else:
            raise DatabaseFormatError(
                f"not a columnar index blob (magic {magic!r})"
                + (f" in {source}" if source else ""))
        self._node_by_level_number: Dict[Tuple[int, int], Node] = {}
        for node in tree.iter_document_order():
            self._node_by_level_number[(node.level, node.jdewey[-1])] = node
        self.n_docs = 0

    def _parse_block(self, term: str) -> LazyColumnarPostings:
        """Verify (per the mode) and parse one block on first touch.

        For a v3 container the payload slice stays a memoryview of the
        mmap and the postings' columns become `np.frombuffer` views --
        no bytes copy happens here or later.
        """
        ref = self._blocks.pop(term)
        try:
            if self.verify != "off":
                payload = verify_block(self._blob, ref, self._algorithm,
                                       file=self.source)
            else:
                payload = self._blob[ref.offset: ref.offset + ref.length]
            if self._format == 4:
                postings = parse_lazy_postings_v4(
                    term, payload, self.io, vectorized=self.vectorized,
                    metrics=self.metrics, file=self.source,
                    decoded_cache=self._decoded_cache,
                    cache_ns=self._cache_ns)
            elif self._format == 3:
                postings = parse_lazy_postings_v3(
                    term, payload, self.io, vectorized=self.vectorized,
                    metrics=self.metrics, file=self.source,
                    decoded_cache=self._decoded_cache,
                    cache_ns=self._cache_ns)
            else:
                postings, _ = parse_lazy_postings(
                    payload, 0, self.io, vectorized=self.vectorized,
                    metrics=self.metrics,
                    decoded_cache=self._decoded_cache,
                    cache_ns=self._cache_ns)
        except DatabaseCorruptError:
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_checksum_failures_total",
                    {"file": self.source or "columnar"}).inc()
            raise
        except _PARSE_ERRORS as exc:
            raise DatabaseCorruptError(
                f"postings for term {term!r} do not parse: {exc}",
                file=self.source, term=term) from exc
        self._postings[term] = postings
        return postings

    @property
    def vocabulary(self) -> List[str]:
        return sorted(set(self._postings) | set(self._blocks))

    def __contains__(self, term: str) -> bool:
        return term in self._postings or term in self._blocks

    def term_postings(self, term: str):
        existing = self._postings.get(term)
        if existing is not None:
            return existing
        if term in self._blocks:
            return self._parse_block(term)
        return LazyColumnarPostings(term, [], [], [], self.io)

    def document_frequency(self, term: str) -> int:
        return len(self.term_postings(term))

    def query_postings(self, terms: Sequence[str]):
        postings = [self.term_postings(t) for t in terms]
        postings.sort(key=len)
        return postings

    def node_at(self, level: int, number: int) -> Node:
        return self._node_by_level_number[(level, number)]
