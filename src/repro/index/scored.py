"""Score-ordered view of a columnar inverted list (paper section IV-C).

Damping makes "order by damped score at level l" depend on l, so a single
score-sorted list cannot serve every column.  The paper's fix: group the
JDewey sequences by length.  Within a group all occurrences damp by the
same factor at any level, so one descending order per group works for
every column; a per-column cursor then merges the group heads online.

`ScoredPostings` holds the grouped view of one term; `ColumnCursor` is
the merged per-level cursor the top-K star join consumes.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .columnar import ColumnarPostings


class ScoreGroup:
    """Sequences of one exact length, sorted by descending local score."""

    __slots__ = ("length", "ordinals", "scores")

    def __init__(self, length: int, ordinals: np.ndarray, scores: np.ndarray):
        order = np.lexsort((ordinals, -scores))
        self.length = length
        self.ordinals = ordinals[order]
        self.scores = scores[order]

    def __len__(self) -> int:
        return len(self.ordinals)


class ScoredPostings:
    """Length-grouped, score-sorted occurrences of one term."""

    def __init__(self, postings: ColumnarPostings, damping_base: float):
        if not 0.0 < damping_base <= 1.0:
            raise ValueError("damping base must be in (0, 1]")
        self.postings = postings
        self.damping_base = damping_base
        self.groups: Dict[int, ScoreGroup] = {}
        lengths = postings.lengths
        for length in np.unique(lengths):
            mask = lengths == length
            ordinals = np.nonzero(mask)[0].astype(np.int64)
            self.groups[int(length)] = ScoreGroup(
                int(length), ordinals, postings.scores[ordinals])
        self.max_len = postings.max_len

    def __len__(self) -> int:
        return len(self.postings)

    def damp(self, raw_score: float, length: int, level: int) -> float:
        return raw_score * self.damping_base ** (length - level)

    def max_damped(self, level: int) -> float:
        """Upper bound s_m(level): best possible damped score in the column.

        The bound scans group heads, so it stays valid even before any
        cursor consumption (the paper uses the list-head scores s_m^i).
        """
        best = 0.0
        for length, group in self.groups.items():
            if length < level or len(group) == 0:
                continue
            best = max(best, self.damp(float(group.scores[0]), length, level))
        return best

    def cursor(self, level: int,
               skip: Optional[Callable[[int], bool]] = None) -> "ColumnCursor":
        """A fresh merged cursor over column `level`.

        ``skip(ordinal) -> bool`` filters out erased sequences (consumed
        by deeper ELCAs) so they never become witnesses.
        """
        return ColumnCursor(self, level, skip)


class ColumnCursor:
    """Merged descending-score cursor over one column of one term.

    `peek_score` is the s^i of the top-K join (score of the next tuple);
    `pop` returns ``(number, ordinal, damped_score)`` for the best
    remaining occurrence at this level.
    """

    def __init__(self, scored: ScoredPostings, level: int,
                 skip: Optional[Callable[[int], bool]] = None):
        self.scored = scored
        self.level = level
        self.skip = skip
        self._positions: Dict[int, int] = {}
        self._heap: List[Tuple[float, int, int]] = []  # (-score, length, pos)
        for length, group in scored.groups.items():
            if length < level or len(group) == 0:
                continue
            self._positions[length] = 0
            self._push_head(length, 0)
        self.retrieved = 0

    def _push_head(self, length: int, pos: int) -> None:
        group = self.scored.groups[length]
        while pos < len(group):
            ordinal = int(group.ordinals[pos])
            if self.skip is not None and self.skip(ordinal):
                pos += 1
                continue
            damped = self.scored.damp(float(group.scores[pos]), length,
                                      self.level)
            heapq.heappush(self._heap, (-damped, length, pos))
            self._positions[length] = pos
            return
        self._positions[length] = pos

    def peek_score(self) -> Optional[float]:
        """Damped score of the next occurrence, or None when exhausted."""
        while self._heap:
            neg_score, length, pos = self._heap[0]
            group = self.scored.groups[length]
            ordinal = int(group.ordinals[pos])
            if self.skip is not None and self.skip(ordinal):
                heapq.heappop(self._heap)
                self._push_head(length, pos + 1)
                continue
            return -neg_score
        return None

    def pop(self) -> Optional[Tuple[int, int, float]]:
        """Retrieve the best remaining occurrence: (number, ordinal, score)."""
        while self._heap:
            neg_score, length, pos = heapq.heappop(self._heap)
            self._push_head(length, pos + 1)
            group = self.scored.groups[length]
            ordinal = int(group.ordinals[pos])
            if self.skip is not None and self.skip(ordinal):
                continue
            number = self.scored.postings.value_at(ordinal, self.level)
            self.retrieved += 1
            return number, ordinal, -neg_score
        return None

    @property
    def exhausted(self) -> bool:
        return self.peek_score() is None
