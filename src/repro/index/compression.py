"""Column compression (paper section III-D).

Two schemes, chosen per column exactly as in the paper:

* **Delta blocks** for columns with many distinct values: each disk
  block stores the first JDewey number in full and every subsequent
  value as a delta from its predecessor (sorted columns make the deltas
  non-negative and small).
* **Run-length triples** for columns with few distinct values: a run of
  the same number is one ``(value, first_row, count)`` triple.  The
  first row is implied by the running sum of counts, so the encoded form
  stores ``(value_delta, count)`` pairs; the logical triple view is what
  the range-checking of section III-E operates on.

All encoders round-trip; sizes feed Table I and the compression
ablation.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

DEFAULT_BLOCK_SIZE = 128
RLE_DISTINCT_RATIO = 0.5

SCHEME_DELTA = "delta"
SCHEME_RLE = "rle"


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Read a varint at `pos`; return (value, next_pos)."""
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7


def varint_size(value: int) -> int:
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_varints(values: Iterable[int]) -> bytes:
    out = bytearray()
    for value in values:
        write_varint(out, value)
    return bytes(out)


def decode_varints(data: bytes) -> List[int]:
    values: List[int] = []
    pos = 0
    while pos < len(data):
        value, pos = read_varint(data, pos)
        values.append(value)
    return values


# ---------------------------------------------------------------------------
# Scheme 1: delta within block
# ---------------------------------------------------------------------------

def encode_delta_blocks(values: Sequence[int],
                        block_size: int = DEFAULT_BLOCK_SIZE) -> bytes:
    """Encode a sorted column with per-block delta coding."""
    out = bytearray()
    write_varint(out, len(values))
    write_varint(out, block_size)
    for start in range(0, len(values), block_size):
        block = values[start: start + block_size]
        write_varint(out, int(block[0]))
        prev = int(block[0])
        for value in block[1:]:
            value = int(value)
            if value < prev:
                raise ValueError("delta blocks need a sorted column")
            write_varint(out, value - prev)
            prev = value
    return bytes(out)


def decode_delta_blocks(data: bytes) -> np.ndarray:
    pos = 0
    count, pos = read_varint(data, pos)
    block_size, pos = read_varint(data, pos)
    values = np.empty(count, dtype=np.int64)
    i = 0
    while i < count:
        first, pos = read_varint(data, pos)
        values[i] = first
        i += 1
        prev = first
        for _ in range(min(block_size - 1, count - i)):
            delta, pos = read_varint(data, pos)
            prev += delta
            values[i] = prev
            i += 1
    return values


# ---------------------------------------------------------------------------
# Scheme 2: run-length triples
# ---------------------------------------------------------------------------

def runs_of(values: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Logical (value, first_row, count) triples of a sorted column."""
    triples: List[Tuple[int, int, int]] = []
    arr = np.asarray(values, dtype=np.int64)
    if len(arr) == 0:
        return triples
    distinct, starts = np.unique(arr, return_index=True)
    boundaries = np.append(starts, len(arr))
    for i, value in enumerate(distinct):
        first = int(boundaries[i])
        count = int(boundaries[i + 1] - boundaries[i])
        triples.append((int(value), first, count))
    return triples


def encode_rle(values: Sequence[int]) -> bytes:
    """Encode a sorted column as (value_delta, count) pairs."""
    out = bytearray()
    triples = runs_of(values)
    write_varint(out, len(values))
    write_varint(out, len(triples))
    prev_value = 0
    for value, _first, count in triples:
        if value < prev_value:
            raise ValueError("RLE needs a sorted column")
        write_varint(out, value - prev_value)
        write_varint(out, count)
        prev_value = value
    return bytes(out)


def decode_rle(data: bytes) -> np.ndarray:
    pos = 0
    count, pos = read_varint(data, pos)
    n_runs, pos = read_varint(data, pos)
    values = np.empty(count, dtype=np.int64)
    i = 0
    value = 0
    for _ in range(n_runs):
        delta, pos = read_varint(data, pos)
        run_len, pos = read_varint(data, pos)
        value += delta
        values[i: i + run_len] = value
        i += run_len
    return values


# ---------------------------------------------------------------------------
# Scheme selection
# ---------------------------------------------------------------------------

def choose_scheme(values: Sequence[int],
                  distinct_ratio: float = RLE_DISTINCT_RATIO) -> str:
    """Pick RLE for low-cardinality columns, delta blocks otherwise."""
    n = len(values)
    if n == 0:
        return SCHEME_RLE
    arr = np.asarray(values, dtype=np.int64)
    n_distinct = len(np.unique(arr))
    return SCHEME_RLE if n_distinct / n <= distinct_ratio else SCHEME_DELTA


def compress_column(values: Sequence[int],
                    block_size: int = DEFAULT_BLOCK_SIZE,
                    distinct_ratio: float = RLE_DISTINCT_RATIO
                    ) -> Tuple[str, bytes]:
    """Compress a sorted column with the scheme `choose_scheme` picks."""
    scheme = choose_scheme(values, distinct_ratio)
    if scheme == SCHEME_RLE:
        return SCHEME_RLE, encode_rle(values)
    return SCHEME_DELTA, encode_delta_blocks(values, block_size)


def decompress_column(scheme: str, data: bytes) -> np.ndarray:
    if scheme == SCHEME_RLE:
        return decode_rle(data)
    if scheme == SCHEME_DELTA:
        return decode_delta_blocks(data)
    raise ValueError(f"unknown compression scheme {scheme!r}")


def uncompressed_size(values: Sequence[int], width_bytes: int = 4) -> int:
    """Size of the raw column with fixed-width integers (ablation base)."""
    return len(values) * width_bytes
