"""Column compression (paper section III-D).

Two schemes, chosen per column exactly as in the paper:

* **Delta blocks** for columns with many distinct values: each disk
  block stores the first JDewey number in full and every subsequent
  value as a delta from its predecessor (sorted columns make the deltas
  non-negative and small).
* **Run-length triples** for columns with few distinct values: a run of
  the same number is one ``(value, first_row, count)`` triple.  The
  first row is implied by the running sum of counts, so the encoded form
  stores ``(value_delta, count)`` pairs; the logical triple view is what
  the range-checking of section III-E operates on.

All encoders round-trip; sizes feed Table I and the compression
ablation.

Decoding has two execution strategies, mirroring the ``vectorized=``
convention of the join-based level loop:

* the **scalar** reference decoders walk the byte stream with
  `read_varint`, exactly as a C implementation would;
* the **vectorized** decoders (default) lift the whole stream into
  numpy at once -- continuation-bit masks locate varint boundaries,
  shifted 7-bit payloads fold with ``np.bitwise_or.reduceat``, and the
  delta/RLE reconstructions are ``np.cumsum`` / ``np.repeat`` over the
  decoded stream.  Both paths are differentially tested; the scalar one
  is retained as the correctness reference.

Every decoder accepts ``bytes``, ``memoryview`` or a ``uint8`` ndarray,
so the format-v3 mmap path can hand columns straight off the file
mapping without an intermediate copy.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

DEFAULT_BLOCK_SIZE = 128
RLE_DISTINCT_RATIO = 0.5

SCHEME_DELTA = "delta"
SCHEME_RLE = "rle"
SCHEME_VARINT = "varint"
SCHEME_FOR = "for"

#: Stable on-disk codec ids.  Format v3 containers only ever wrote ids
#: 0/1; format v4 records the adaptive selector's choice here, so
#: `decompress_column` dispatches on the recorded id without sniffing.
SCHEME_IDS = {SCHEME_RLE: 0, SCHEME_DELTA: 1, SCHEME_VARINT: 2,
              SCHEME_FOR: 3}
SCHEME_NAMES = {sid: name for name, sid in SCHEME_IDS.items()}

#: The candidate set the format-v4 adaptive selector measures.
V4_CODECS = (SCHEME_RLE, SCHEME_DELTA, SCHEME_FOR, SCHEME_VARINT)

#: The widest value any numpy-backed consumer can represent: decoded
#: columns land in int64/uint64 arrays, so a varint that does not fit
#: in 64 bits is corrupt data, not a bigger integer.
VARINT_MAX = 2 ** 64 - 1
_MAX_VARINT_BYTES = 10  # ceil(64 / 7)

ByteSource = Union[bytes, bytearray, memoryview, np.ndarray]


def as_byte_array(data: ByteSource) -> np.ndarray:
    """View `data` as a uint8 ndarray without copying."""
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            raise ValueError("byte arrays must be uint8")
        return data
    return np.frombuffer(data, dtype=np.uint8)


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_varint(data: ByteSource, pos: int) -> Tuple[int, int]:
    """Read a varint at `pos`; return (value, next_pos)."""
    result = 0
    shift = 0
    while True:
        byte = int(data[pos])
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7


def varint_size(value: int) -> int:
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_varints(values: Iterable[int]) -> bytes:
    out = bytearray()
    for value in values:
        write_varint(out, value)
    return bytes(out)


def decode_varints(data: ByteSource) -> List[int]:
    """Decode a whole varint stream (scalar reference path).

    The output list is preallocated -- one pass over the continuation
    bits counts the values, so the decode loop never grows a list.
    Raises `ValueError` when a value overflows 64 bits (`VARINT_MAX`):
    downstream `np.frombuffer` columns are uint64/int64, so a wider
    value is corruption, not data.
    """
    arr = as_byte_array(data)
    n = int(np.count_nonzero(arr < 0x80))
    values: List[int] = [0] * n
    pos = 0
    for i in range(n):
        value, pos = read_varint(data, pos)
        if value > VARINT_MAX:
            raise ValueError(
                f"varint at byte {pos} overflows 64 bits ({value})")
        values[i] = value
    if pos != len(arr):
        raise ValueError("truncated varint stream (trailing continuation "
                         "bytes)")
    return values


def decode_varints_vectorized(data: ByteSource) -> np.ndarray:
    """Decode a whole varint stream at once; returns a uint64 array.

    Continuation-bit masks find the value boundaries, every byte's
    7-bit payload is shifted by ``7 * (position within its varint)``
    and the shifted payloads fold with ``np.bitwise_or.reduceat`` --
    no Python-level loop touches the stream.  Raises `ValueError` on
    truncation or a value that overflows 64 bits (the scalar decoder's
    contract).
    """
    arr = as_byte_array(data)
    if arr.size == 0:
        return np.empty(0, dtype=np.uint64)
    ends = np.flatnonzero(arr < 0x80)
    if ends.size == 0 or ends[-1] != arr.size - 1:
        raise ValueError("truncated varint stream (trailing continuation "
                         "bytes)")
    starts = np.empty(ends.size, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lens = ends - starts + 1
    widest = int(lens.max())
    if widest > _MAX_VARINT_BYTES:
        raise ValueError(
            f"varint wider than {_MAX_VARINT_BYTES} bytes overflows 64 bits")
    if widest == _MAX_VARINT_BYTES:
        # A 10-byte varint only fits uint64 when its last byte is 0 or 1
        # (bits 63..69 would otherwise be set).
        if np.any(arr[ends[lens == _MAX_VARINT_BYTES]] > 1):
            raise ValueError("varint overflows 64 bits")
    # Fold byte position k of every still-active varint per round: at
    # most 10 rounds, each a gather over the varints that have a k-th
    # byte -- O(total bytes) work with no per-byte index arithmetic
    # (measurably faster than the reduceat formulation on real columns).
    payload = arr & 0x7F
    values = payload[starts].astype(np.uint64)
    active = np.flatnonzero(lens > 1)
    for k in range(1, widest):
        values[active] |= payload[starts[active] + k].astype(np.uint64) \
            << np.uint64(7 * k)
        if k + 1 < widest:
            active = active[lens[active] > k + 1]
    return values


# ---------------------------------------------------------------------------
# Scheme 1: delta within block
# ---------------------------------------------------------------------------

def encode_delta_blocks(values: Sequence[int],
                        block_size: int = DEFAULT_BLOCK_SIZE) -> bytes:
    """Encode a sorted column with per-block delta coding."""
    out = bytearray()
    write_varint(out, len(values))
    write_varint(out, block_size)
    for start in range(0, len(values), block_size):
        block = values[start: start + block_size]
        write_varint(out, int(block[0]))
        prev = int(block[0])
        for value in block[1:]:
            value = int(value)
            if value < prev:
                raise ValueError("delta blocks need a sorted column")
            write_varint(out, value - prev)
            prev = value
    return bytes(out)


def decode_delta_blocks(data: ByteSource,
                        vectorized: bool = True) -> np.ndarray:
    """Decode a delta-block column; ``vectorized=False`` runs the
    scalar reference loop."""
    if not vectorized:
        return _decode_delta_blocks_scalar(data)
    stream = decode_varints_vectorized(data)
    if stream.size < 2:
        raise ValueError("delta column truncated inside the header")
    count = int(stream[0])
    block_size = int(stream[1])
    if block_size < 1:
        raise ValueError(f"invalid delta block size {block_size}")
    raw = stream[2:]
    if raw.size != count:
        raise ValueError(
            f"delta column carries {raw.size} values, header says {count}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    # `raw` holds the first value of each block in full and every other
    # value as a delta, so within a block the value at i is
    # ``cumsum(raw)[i] - (cumsum(raw)[start] - raw[start])``.  uint64
    # wraparound keeps the subtraction exact even if the global cumsum
    # overflows: the true values fit 64 bits and the arithmetic is
    # modular.
    block_starts = np.arange(0, count, block_size, dtype=np.int64)
    cumsum = np.cumsum(raw, dtype=np.uint64)
    adjust = cumsum[block_starts] - raw[block_starts]
    block_lens = np.diff(np.append(block_starts, count))
    return (cumsum - np.repeat(adjust, block_lens)).astype(np.int64)


def _decode_delta_blocks_scalar(data: ByteSource) -> np.ndarray:
    pos = 0
    count, pos = read_varint(data, pos)
    block_size, pos = read_varint(data, pos)
    values = np.empty(count, dtype=np.int64)
    i = 0
    while i < count:
        first, pos = read_varint(data, pos)
        values[i] = first
        i += 1
        prev = first
        for _ in range(min(block_size - 1, count - i)):
            delta, pos = read_varint(data, pos)
            prev += delta
            values[i] = prev
            i += 1
    return values


# ---------------------------------------------------------------------------
# Scheme 2: run-length triples
# ---------------------------------------------------------------------------

def runs_of(values: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Logical (value, first_row, count) triples of a sorted column."""
    triples: List[Tuple[int, int, int]] = []
    arr = np.asarray(values, dtype=np.int64)
    if len(arr) == 0:
        return triples
    distinct, starts = np.unique(arr, return_index=True)
    boundaries = np.append(starts, len(arr))
    for i, value in enumerate(distinct):
        first = int(boundaries[i])
        count = int(boundaries[i + 1] - boundaries[i])
        triples.append((int(value), first, count))
    return triples


def encode_rle(values: Sequence[int]) -> bytes:
    """Encode a sorted column as (value_delta, count) pairs."""
    out = bytearray()
    triples = runs_of(values)
    write_varint(out, len(values))
    write_varint(out, len(triples))
    prev_value = 0
    for value, _first, count in triples:
        if value < prev_value:
            raise ValueError("RLE needs a sorted column")
        write_varint(out, value - prev_value)
        write_varint(out, count)
        prev_value = value
    return bytes(out)


def decode_rle(data: ByteSource, vectorized: bool = True) -> np.ndarray:
    """Decode an RLE column; ``vectorized=False`` runs the scalar
    reference loop."""
    if not vectorized:
        return _decode_rle_scalar(data)
    stream = decode_varints_vectorized(data)
    if stream.size < 2:
        raise ValueError("RLE column truncated inside the header")
    count = int(stream[0])
    n_runs = int(stream[1])
    pairs = stream[2:]
    if pairs.size != 2 * n_runs:
        raise ValueError(
            f"RLE column carries {pairs.size} ints, header says "
            f"{n_runs} (delta, count) pairs")
    run_values = np.cumsum(pairs[0::2], dtype=np.uint64).astype(np.int64)
    run_lens = pairs[1::2].astype(np.int64)
    values = np.repeat(run_values, run_lens)
    if values.size != count:
        raise ValueError(
            f"RLE runs expand to {values.size} values, header says {count}")
    return values


def _decode_rle_scalar(data: ByteSource) -> np.ndarray:
    pos = 0
    count, pos = read_varint(data, pos)
    n_runs, pos = read_varint(data, pos)
    values = np.empty(count, dtype=np.int64)
    i = 0
    value = 0
    for _ in range(n_runs):
        delta, pos = read_varint(data, pos)
        run_len, pos = read_varint(data, pos)
        value += delta
        values[i: i + run_len] = value
        i += run_len
    return values


# ---------------------------------------------------------------------------
# Scheme 3: plain varint stream (format v4)
# ---------------------------------------------------------------------------
#
# The degenerate member of the v4 candidate set: no modelling at all,
# just LEB128 bytes.  It exists so the adaptive selector has an honest
# floor -- a column whose deltas are *larger* than its values (it
# happens at level 1, where one sequence per subtree makes the column
# nearly uniform-random) should not be forced through delta coding.

def encode_varint_column(values: Sequence[int]) -> bytes:
    """Encode a column as ``varint(count) | varint(value)...``."""
    out = bytearray()
    write_varint(out, len(values))
    for value in values:
        write_varint(out, int(value))
    return bytes(out)


def decode_varint_column(data: ByteSource,
                         vectorized: bool = True) -> np.ndarray:
    """Decode a plain varint column; ``vectorized=False`` runs the
    scalar reference loop."""
    if not vectorized:
        return _decode_varint_column_scalar(data)
    stream = decode_varints_vectorized(data)
    if stream.size < 1:
        raise ValueError("varint column truncated inside the header")
    count = int(stream[0])
    values = stream[1:]
    if values.size != count:
        raise ValueError(
            f"varint column carries {values.size} values, header says "
            f"{count}")
    return values.astype(np.int64)


def _decode_varint_column_scalar(data: ByteSource) -> np.ndarray:
    pos = 0
    count, pos = read_varint(data, pos)
    values = np.empty(count, dtype=np.int64)
    for i in range(count):
        value, pos = read_varint(data, pos)
        values[i] = np.uint64(value).astype(np.int64)
    return values


# ---------------------------------------------------------------------------
# Scheme 4: frame-of-reference + fixed bit-width packing (format v4)
# ---------------------------------------------------------------------------
#
# Layout (all integers little-endian, bit stream MSB-first)::
#
#     u32 count | u32 block_size
#     u64 bases[n_blocks]        per-block frame-of-reference minimum
#     u8  widths[n_blocks]       bits per packed value (0..64)
#     per block: ceil(n * width / 8) packed bytes, byte-aligned
#
# A block of identical values has width 0 and **zero** payload bytes --
# the single-value / constant-run case costs 9 bytes per block, total.
# Unlike the varint family, every region is fixed-width given the
# header, so the vectorized decoder is pure numpy shift/mask arithmetic
# over an 8-byte gather window per value -- no per-byte boundary scan
# at all (the Lemire & Boytsov bit-packing discipline).

_FOR_HEADER_BYTES = 8


def _for_block_layout(count: int, block_size: int
                      ) -> Tuple[int, np.ndarray]:
    """(n_blocks, per-block value counts) for a FOR column."""
    if block_size < 1:
        raise ValueError(f"invalid FOR block size {block_size}")
    n_blocks = (count + block_size - 1) // block_size
    block_n = np.full(n_blocks, block_size, dtype=np.int64)
    if n_blocks:
        block_n[-1] = count - (n_blocks - 1) * block_size
    return n_blocks, block_n


def encode_for(values: Sequence[int],
               block_size: int = DEFAULT_BLOCK_SIZE) -> bytes:
    """Encode a column with per-block frame-of-reference bit packing."""
    if block_size < 1:
        raise ValueError(f"invalid FOR block size {block_size}")
    count = len(values)
    arr = np.asarray(values, dtype=np.uint64)
    out = bytearray()
    out.extend(int(count).to_bytes(4, "little"))
    out.extend(int(block_size).to_bytes(4, "little"))
    n_blocks, _block_n = _for_block_layout(count, block_size)
    bases = np.empty(n_blocks, dtype=np.uint64)
    widths = bytearray(n_blocks)
    packed: List[bytes] = []
    for b in range(n_blocks):
        block = arr[b * block_size: (b + 1) * block_size]
        base = block.min()
        bases[b] = base
        deltas = block - base           # uint64, exact: base is the min
        top = int(deltas.max())
        width = top.bit_length()
        widths[b] = width
        if width == 0:
            packed.append(b"")
            continue
        # MSB-first bit matrix -> np.packbits; the stream is byte-
        # aligned per block so the decoder's offsets stay arithmetic.
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits = ((deltas[:, None] >> shifts[None, :])
                & np.uint64(1)).astype(np.uint8)
        packed.append(np.packbits(bits.ravel()).tobytes())
    out.extend(bases.tobytes())
    out.extend(widths)
    for blob in packed:
        out.extend(blob)
    return bytes(out)


def decode_for(data: ByteSource, vectorized: bool = True) -> np.ndarray:
    """Decode a FOR column; ``vectorized=False`` runs the scalar
    reference loop (bit-at-a-time, the differential oracle)."""
    if not vectorized:
        return _decode_for_scalar(data)
    arr = as_byte_array(data)
    if arr.size < _FOR_HEADER_BYTES:
        raise ValueError("FOR column truncated inside the header")
    header = arr[:8].view(np.uint32)
    count = int(header[0])
    block_size = int(header[1])
    n_blocks, block_n = _for_block_layout(count, block_size)
    tables_end = _FOR_HEADER_BYTES + 9 * n_blocks
    if arr.size < tables_end:
        raise ValueError("FOR column truncated inside the block tables")
    bases = arr[_FOR_HEADER_BYTES: _FOR_HEADER_BYTES + 8 * n_blocks] \
        .view(np.uint64)
    widths = arr[_FOR_HEADER_BYTES + 8 * n_blocks: tables_end] \
        .astype(np.int64)
    if n_blocks and int(widths.max()) > 64:
        raise ValueError("FOR block width exceeds 64 bits")
    block_bytes = (block_n * widths + 7) >> 3
    payload_len = int(block_bytes.sum())
    if arr.size != tables_end + payload_len:
        raise ValueError(
            f"FOR column carries {arr.size - tables_end} payload bytes, "
            f"header says {payload_len}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    bases_rep = np.repeat(bases, block_n)
    max_width = int(widths.max())
    if max_width == 0:
        return bases_rep.astype(np.int64)
    # Per-value coordinates, all derived arithmetically from the header.
    block_starts = np.concatenate(
        ([0], np.cumsum(block_bytes)))[:-1]      # bytes, payload-relative
    wv = np.repeat(widths, block_n)              # width per value
    pos_in_block = np.arange(count, dtype=np.int64) \
        - np.repeat(np.arange(n_blocks, dtype=np.int64) * block_size,
                    block_n)
    sv = np.repeat(block_starts << 3, block_n) \
        + pos_in_block * wv                      # start bit per value
    # Gather a big-endian window at each value's start byte; the value
    # is then a shift/mask away.  Zero padding lets tail windows gather
    # safely.  Three tiers by the column's widest block: a 4-byte
    # uint32 window covers bit_off + width <= 32 (the common dewey
    # range), an 8-byte uint64 window covers width <= 57, and only
    # wider values pay for the ninth "tail" byte.
    payload = np.concatenate((arr[tables_end:],
                              np.zeros(16, dtype=np.uint8)))
    byte_start = sv >> 3
    if max_width <= 25:
        b0 = payload[byte_start].astype(np.uint32)
        b1 = payload[byte_start + 1].astype(np.uint32)
        b2 = payload[byte_start + 2].astype(np.uint32)
        b3 = payload[byte_start + 3].astype(np.uint32)
        take4 = ((b0 << np.uint32(24)) | (b1 << np.uint32(16))
                 | (b2 << np.uint32(8)) | b3)
        bit_off = (sv & 7).astype(np.uint32)
        w_safe = np.maximum(wv, 1).astype(np.uint32)
        deltas = ((take4 << bit_off)
                  >> (np.uint32(32) - w_safe)).astype(np.uint64)
    else:
        from numpy.lib.stride_tricks import sliding_window_view
        windows = sliding_window_view(payload, 8)
        take8 = windows[byte_start].view(">u8")[:, 0].astype(np.uint64)
        bit_off = (sv & 7).astype(np.uint64)
        w_safe = np.maximum(wv, 1).astype(np.uint64)
        deltas = (take8 << bit_off) >> (np.uint64(64) - w_safe)
        if max_width > 57:
            # A value wider than (64 - bit offset) spills into a ninth
            # byte; its low `missing` bits come from that byte's top
            # bits (the spilled region of `deltas` is zero-filled by
            # the left shift, so OR-ing is exact).
            missing = np.maximum(bit_off.astype(np.int64) + wv - 64, 0) \
                .astype(np.uint64)
            tail = payload[byte_start + 8].astype(np.uint64)
            deltas |= tail >> (np.uint64(8) - missing)
    if int(widths.min()) == 0:
        deltas = np.where(wv == 0, np.uint64(0), deltas)
    return (bases_rep + deltas).astype(np.int64)


def _decode_for_scalar(data: ByteSource) -> np.ndarray:
    """Bit-at-a-time FOR reference decoder."""
    arr = as_byte_array(data)
    if len(arr) < _FOR_HEADER_BYTES:
        raise ValueError("FOR column truncated inside the header")
    count = int.from_bytes(bytes(arr[0:4]), "little")
    block_size = int.from_bytes(bytes(arr[4:8]), "little")
    n_blocks, block_n = _for_block_layout(count, block_size)
    tables_end = _FOR_HEADER_BYTES + 9 * n_blocks
    if len(arr) < tables_end:
        raise ValueError("FOR column truncated inside the block tables")
    values = np.empty(count, dtype=np.int64)
    pos = tables_end          # payload cursor, in bytes
    out = 0
    for b in range(n_blocks):
        base = int.from_bytes(
            bytes(arr[_FOR_HEADER_BYTES + 8 * b:
                      _FOR_HEADER_BYTES + 8 * b + 8]), "little")
        width = int(arr[_FOR_HEADER_BYTES + 8 * n_blocks + b])
        if width > 64:
            raise ValueError("FOR block width exceeds 64 bits")
        n = int(block_n[b])
        nbytes = (n * width + 7) >> 3
        if pos + nbytes > len(arr):
            raise ValueError("FOR payload runs off the end")
        for i in range(n):
            delta = 0
            for j in range(width):
                bit_index = i * width + j
                byte = int(arr[pos + (bit_index >> 3)])
                bit = (byte >> (7 - (bit_index & 7))) & 1
                delta = (delta << 1) | bit
            values[out] = np.uint64((base + delta)
                                    & VARINT_MAX).astype(np.int64)
            out += 1
        pos += nbytes
    if pos != len(arr):
        raise ValueError(
            f"FOR column carries {len(arr) - tables_end} payload bytes, "
            "more than its blocks describe")
    return values


# ---------------------------------------------------------------------------
# Scheme selection
# ---------------------------------------------------------------------------

def choose_scheme(values: Sequence[int],
                  distinct_ratio: float = RLE_DISTINCT_RATIO) -> str:
    """Pick RLE for low-cardinality columns, delta blocks otherwise."""
    n = len(values)
    if n == 0:
        return SCHEME_RLE
    arr = np.asarray(values, dtype=np.int64)
    n_distinct = len(np.unique(arr))
    return SCHEME_RLE if n_distinct / n <= distinct_ratio else SCHEME_DELTA


def compress_column(values: Sequence[int],
                    block_size: int = DEFAULT_BLOCK_SIZE,
                    distinct_ratio: float = RLE_DISTINCT_RATIO
                    ) -> Tuple[str, bytes]:
    """Compress a sorted column with the scheme `choose_scheme` picks."""
    scheme = choose_scheme(values, distinct_ratio)
    if scheme == SCHEME_RLE:
        return SCHEME_RLE, encode_rle(values)
    return SCHEME_DELTA, encode_delta_blocks(values, block_size)


_ENCODERS = {
    SCHEME_RLE: lambda values, block_size: encode_rle(values),
    SCHEME_DELTA: encode_delta_blocks,
    SCHEME_VARINT: lambda values, block_size: encode_varint_column(values),
    SCHEME_FOR: encode_for,
}


def choose_codec(values: Sequence[int],
                 codecs: Sequence[str] = V4_CODECS,
                 block_size: int = DEFAULT_BLOCK_SIZE
                 ) -> Tuple[str, bytes]:
    """Format-v4 adaptive selector: encode every candidate and keep the
    smallest payload.

    Ties break in ``codecs`` order, so the choice is deterministic for
    a given candidate tuple.  The winner's scheme id is recorded in the
    v4 container, which is what lets `decompress_column` dispatch
    without sniffing payload bytes.

    A candidate that cannot encode the column (rle and delta demand
    sorted input; FOR and varint take anything non-negative) simply
    drops out of the running -- the selector only fails when *no*
    candidate can.
    """
    best: Optional[Tuple[str, bytes]] = None
    last_error: Optional[ValueError] = None
    for scheme in codecs:
        try:
            encoder = _ENCODERS[scheme]
        except KeyError:
            raise ValueError(f"unknown compression scheme {scheme!r}")
        try:
            payload = encoder(values, block_size)
        except ValueError as exc:
            last_error = exc
            continue
        if best is None or len(payload) < len(best[1]):
            best = (scheme, payload)
    if best is None:
        if last_error is not None:
            raise ValueError(
                f"no candidate codec in {tuple(codecs)!r} can encode "
                f"this column: {last_error}") from last_error
        raise ValueError("choose_codec needs at least one candidate codec")
    return best


# Below this payload size the numpy batch decode's fixed setup cost
# exceeds the whole scalar loop (crossover measured around 150 varints),
# so `decompress_column(vectorized=True)` is adaptive: tiny columns take
# the scalar loop, everything else the vectorized decoders.  The decoder
# entry points themselves stay pure so the two paths remain
# differentially testable on any input size.  The crossover is tunable:
# per call via the `min_bytes` keyword, per process via the
# REPRO_VECTORIZED_MIN_BYTES environment variable (read at call time so
# tests and operators can flip it without reimporting).
VECTORIZED_MIN_BYTES = 256

_MIN_BYTES_ENV = "REPRO_VECTORIZED_MIN_BYTES"


def vectorized_min_bytes() -> int:
    """The active scalar/vectorized crossover threshold in bytes."""
    raw = os.environ.get(_MIN_BYTES_ENV)
    if raw is not None:
        try:
            return int(raw)
        except ValueError:
            raise ValueError(
                f"{_MIN_BYTES_ENV} must be an integer, got {raw!r}")
    return VECTORIZED_MIN_BYTES


_DECODERS = {
    SCHEME_RLE: decode_rle,
    SCHEME_DELTA: decode_delta_blocks,
    SCHEME_VARINT: decode_varint_column,
    SCHEME_FOR: decode_for,
}


def decompress_column(scheme: str, data: ByteSource,
                      vectorized: bool = True,
                      min_bytes: Optional[int] = None) -> np.ndarray:
    threshold = vectorized_min_bytes() if min_bytes is None else min_bytes
    vectorized = vectorized and len(data) >= threshold
    try:
        decoder = _DECODERS[scheme]
    except KeyError:
        raise ValueError(f"unknown compression scheme {scheme!r}")
    return decoder(data, vectorized=vectorized)


def uncompressed_size(values: Sequence[int], width_bytes: int = 4) -> int:
    """Size of the raw column with fixed-width integers (ablation base)."""
    return len(values) * width_bytes
