"""Column compression (paper section III-D).

Two schemes, chosen per column exactly as in the paper:

* **Delta blocks** for columns with many distinct values: each disk
  block stores the first JDewey number in full and every subsequent
  value as a delta from its predecessor (sorted columns make the deltas
  non-negative and small).
* **Run-length triples** for columns with few distinct values: a run of
  the same number is one ``(value, first_row, count)`` triple.  The
  first row is implied by the running sum of counts, so the encoded form
  stores ``(value_delta, count)`` pairs; the logical triple view is what
  the range-checking of section III-E operates on.

All encoders round-trip; sizes feed Table I and the compression
ablation.

Decoding has two execution strategies, mirroring the ``vectorized=``
convention of the join-based level loop:

* the **scalar** reference decoders walk the byte stream with
  `read_varint`, exactly as a C implementation would;
* the **vectorized** decoders (default) lift the whole stream into
  numpy at once -- continuation-bit masks locate varint boundaries,
  shifted 7-bit payloads fold with ``np.bitwise_or.reduceat``, and the
  delta/RLE reconstructions are ``np.cumsum`` / ``np.repeat`` over the
  decoded stream.  Both paths are differentially tested; the scalar one
  is retained as the correctness reference.

Every decoder accepts ``bytes``, ``memoryview`` or a ``uint8`` ndarray,
so the format-v3 mmap path can hand columns straight off the file
mapping without an intermediate copy.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

DEFAULT_BLOCK_SIZE = 128
RLE_DISTINCT_RATIO = 0.5

SCHEME_DELTA = "delta"
SCHEME_RLE = "rle"

#: The widest value any numpy-backed consumer can represent: decoded
#: columns land in int64/uint64 arrays, so a varint that does not fit
#: in 64 bits is corrupt data, not a bigger integer.
VARINT_MAX = 2 ** 64 - 1
_MAX_VARINT_BYTES = 10  # ceil(64 / 7)

ByteSource = Union[bytes, bytearray, memoryview, np.ndarray]


def as_byte_array(data: ByteSource) -> np.ndarray:
    """View `data` as a uint8 ndarray without copying."""
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            raise ValueError("byte arrays must be uint8")
        return data
    return np.frombuffer(data, dtype=np.uint8)


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_varint(data: ByteSource, pos: int) -> Tuple[int, int]:
    """Read a varint at `pos`; return (value, next_pos)."""
    result = 0
    shift = 0
    while True:
        byte = int(data[pos])
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7


def varint_size(value: int) -> int:
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_varints(values: Iterable[int]) -> bytes:
    out = bytearray()
    for value in values:
        write_varint(out, value)
    return bytes(out)


def decode_varints(data: ByteSource) -> List[int]:
    """Decode a whole varint stream (scalar reference path).

    The output list is preallocated -- one pass over the continuation
    bits counts the values, so the decode loop never grows a list.
    Raises `ValueError` when a value overflows 64 bits (`VARINT_MAX`):
    downstream `np.frombuffer` columns are uint64/int64, so a wider
    value is corruption, not data.
    """
    arr = as_byte_array(data)
    n = int(np.count_nonzero(arr < 0x80))
    values: List[int] = [0] * n
    pos = 0
    for i in range(n):
        value, pos = read_varint(data, pos)
        if value > VARINT_MAX:
            raise ValueError(
                f"varint at byte {pos} overflows 64 bits ({value})")
        values[i] = value
    if pos != len(arr):
        raise ValueError("truncated varint stream (trailing continuation "
                         "bytes)")
    return values


def decode_varints_vectorized(data: ByteSource) -> np.ndarray:
    """Decode a whole varint stream at once; returns a uint64 array.

    Continuation-bit masks find the value boundaries, every byte's
    7-bit payload is shifted by ``7 * (position within its varint)``
    and the shifted payloads fold with ``np.bitwise_or.reduceat`` --
    no Python-level loop touches the stream.  Raises `ValueError` on
    truncation or a value that overflows 64 bits (the scalar decoder's
    contract).
    """
    arr = as_byte_array(data)
    if arr.size == 0:
        return np.empty(0, dtype=np.uint64)
    ends = np.flatnonzero(arr < 0x80)
    if ends.size == 0 or ends[-1] != arr.size - 1:
        raise ValueError("truncated varint stream (trailing continuation "
                         "bytes)")
    starts = np.empty(ends.size, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lens = ends - starts + 1
    widest = int(lens.max())
    if widest > _MAX_VARINT_BYTES:
        raise ValueError(
            f"varint wider than {_MAX_VARINT_BYTES} bytes overflows 64 bits")
    if widest == _MAX_VARINT_BYTES:
        # A 10-byte varint only fits uint64 when its last byte is 0 or 1
        # (bits 63..69 would otherwise be set).
        if np.any(arr[ends[lens == _MAX_VARINT_BYTES]] > 1):
            raise ValueError("varint overflows 64 bits")
    # Fold byte position k of every still-active varint per round: at
    # most 10 rounds, each a gather over the varints that have a k-th
    # byte -- O(total bytes) work with no per-byte index arithmetic
    # (measurably faster than the reduceat formulation on real columns).
    payload = arr & 0x7F
    values = payload[starts].astype(np.uint64)
    active = np.flatnonzero(lens > 1)
    for k in range(1, widest):
        values[active] |= payload[starts[active] + k].astype(np.uint64) \
            << np.uint64(7 * k)
        if k + 1 < widest:
            active = active[lens[active] > k + 1]
    return values


# ---------------------------------------------------------------------------
# Scheme 1: delta within block
# ---------------------------------------------------------------------------

def encode_delta_blocks(values: Sequence[int],
                        block_size: int = DEFAULT_BLOCK_SIZE) -> bytes:
    """Encode a sorted column with per-block delta coding."""
    out = bytearray()
    write_varint(out, len(values))
    write_varint(out, block_size)
    for start in range(0, len(values), block_size):
        block = values[start: start + block_size]
        write_varint(out, int(block[0]))
        prev = int(block[0])
        for value in block[1:]:
            value = int(value)
            if value < prev:
                raise ValueError("delta blocks need a sorted column")
            write_varint(out, value - prev)
            prev = value
    return bytes(out)


def decode_delta_blocks(data: ByteSource,
                        vectorized: bool = True) -> np.ndarray:
    """Decode a delta-block column; ``vectorized=False`` runs the
    scalar reference loop."""
    if not vectorized:
        return _decode_delta_blocks_scalar(data)
    stream = decode_varints_vectorized(data)
    if stream.size < 2:
        raise ValueError("delta column truncated inside the header")
    count = int(stream[0])
    block_size = int(stream[1])
    if block_size < 1:
        raise ValueError(f"invalid delta block size {block_size}")
    raw = stream[2:]
    if raw.size != count:
        raise ValueError(
            f"delta column carries {raw.size} values, header says {count}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    # `raw` holds the first value of each block in full and every other
    # value as a delta, so within a block the value at i is
    # ``cumsum(raw)[i] - (cumsum(raw)[start] - raw[start])``.  uint64
    # wraparound keeps the subtraction exact even if the global cumsum
    # overflows: the true values fit 64 bits and the arithmetic is
    # modular.
    block_starts = np.arange(0, count, block_size, dtype=np.int64)
    cumsum = np.cumsum(raw, dtype=np.uint64)
    adjust = cumsum[block_starts] - raw[block_starts]
    block_lens = np.diff(np.append(block_starts, count))
    return (cumsum - np.repeat(adjust, block_lens)).astype(np.int64)


def _decode_delta_blocks_scalar(data: ByteSource) -> np.ndarray:
    pos = 0
    count, pos = read_varint(data, pos)
    block_size, pos = read_varint(data, pos)
    values = np.empty(count, dtype=np.int64)
    i = 0
    while i < count:
        first, pos = read_varint(data, pos)
        values[i] = first
        i += 1
        prev = first
        for _ in range(min(block_size - 1, count - i)):
            delta, pos = read_varint(data, pos)
            prev += delta
            values[i] = prev
            i += 1
    return values


# ---------------------------------------------------------------------------
# Scheme 2: run-length triples
# ---------------------------------------------------------------------------

def runs_of(values: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Logical (value, first_row, count) triples of a sorted column."""
    triples: List[Tuple[int, int, int]] = []
    arr = np.asarray(values, dtype=np.int64)
    if len(arr) == 0:
        return triples
    distinct, starts = np.unique(arr, return_index=True)
    boundaries = np.append(starts, len(arr))
    for i, value in enumerate(distinct):
        first = int(boundaries[i])
        count = int(boundaries[i + 1] - boundaries[i])
        triples.append((int(value), first, count))
    return triples


def encode_rle(values: Sequence[int]) -> bytes:
    """Encode a sorted column as (value_delta, count) pairs."""
    out = bytearray()
    triples = runs_of(values)
    write_varint(out, len(values))
    write_varint(out, len(triples))
    prev_value = 0
    for value, _first, count in triples:
        if value < prev_value:
            raise ValueError("RLE needs a sorted column")
        write_varint(out, value - prev_value)
        write_varint(out, count)
        prev_value = value
    return bytes(out)


def decode_rle(data: ByteSource, vectorized: bool = True) -> np.ndarray:
    """Decode an RLE column; ``vectorized=False`` runs the scalar
    reference loop."""
    if not vectorized:
        return _decode_rle_scalar(data)
    stream = decode_varints_vectorized(data)
    if stream.size < 2:
        raise ValueError("RLE column truncated inside the header")
    count = int(stream[0])
    n_runs = int(stream[1])
    pairs = stream[2:]
    if pairs.size != 2 * n_runs:
        raise ValueError(
            f"RLE column carries {pairs.size} ints, header says "
            f"{n_runs} (delta, count) pairs")
    run_values = np.cumsum(pairs[0::2], dtype=np.uint64).astype(np.int64)
    run_lens = pairs[1::2].astype(np.int64)
    values = np.repeat(run_values, run_lens)
    if values.size != count:
        raise ValueError(
            f"RLE runs expand to {values.size} values, header says {count}")
    return values


def _decode_rle_scalar(data: ByteSource) -> np.ndarray:
    pos = 0
    count, pos = read_varint(data, pos)
    n_runs, pos = read_varint(data, pos)
    values = np.empty(count, dtype=np.int64)
    i = 0
    value = 0
    for _ in range(n_runs):
        delta, pos = read_varint(data, pos)
        run_len, pos = read_varint(data, pos)
        value += delta
        values[i: i + run_len] = value
        i += run_len
    return values


# ---------------------------------------------------------------------------
# Scheme selection
# ---------------------------------------------------------------------------

def choose_scheme(values: Sequence[int],
                  distinct_ratio: float = RLE_DISTINCT_RATIO) -> str:
    """Pick RLE for low-cardinality columns, delta blocks otherwise."""
    n = len(values)
    if n == 0:
        return SCHEME_RLE
    arr = np.asarray(values, dtype=np.int64)
    n_distinct = len(np.unique(arr))
    return SCHEME_RLE if n_distinct / n <= distinct_ratio else SCHEME_DELTA


def compress_column(values: Sequence[int],
                    block_size: int = DEFAULT_BLOCK_SIZE,
                    distinct_ratio: float = RLE_DISTINCT_RATIO
                    ) -> Tuple[str, bytes]:
    """Compress a sorted column with the scheme `choose_scheme` picks."""
    scheme = choose_scheme(values, distinct_ratio)
    if scheme == SCHEME_RLE:
        return SCHEME_RLE, encode_rle(values)
    return SCHEME_DELTA, encode_delta_blocks(values, block_size)


# Below this payload size the numpy batch decode's fixed setup cost
# exceeds the whole scalar loop (crossover measured around 150 varints),
# so `decompress_column(vectorized=True)` is adaptive: tiny columns take
# the scalar loop, everything else the vectorized decoders.  The decoder
# entry points themselves stay pure so the two paths remain
# differentially testable on any input size.
VECTORIZED_MIN_BYTES = 256


def decompress_column(scheme: str, data: ByteSource,
                      vectorized: bool = True) -> np.ndarray:
    vectorized = vectorized and len(data) >= VECTORIZED_MIN_BYTES
    if scheme == SCHEME_RLE:
        return decode_rle(data, vectorized=vectorized)
    if scheme == SCHEME_DELTA:
        return decode_delta_blocks(data, vectorized=vectorized)
    raise ValueError(f"unknown compression scheme {scheme!r}")


def uncompressed_size(values: Sequence[int], width_bytes: int = 4) -> int:
    """Size of the raw column with fixed-width integers (ablation base)."""
    return len(values) * width_bytes
