"""Column-oriented JDewey inverted index (paper sections III-A/III-B).

Each term's occurrences are kept as JDewey sequences sorted in JDewey
order; column ``l`` holds the ``l``-th component of every sequence of
length >= ``l``.  Property 3.1 makes every column sorted, so runs of the
same number are contiguous -- the run view *is* the second compression
scheme of section III-D, and the join algorithms operate directly on the
distinct-value arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..scoring.ranking import RankingModel
from ..xmltree.jdewey import JDeweySeq
from ..xmltree.tree import Node, XMLTree
from .tokenizer import Tokenizer


class Column:
    """One level of one term's inverted list.

    Attributes
    ----------
    values:
        Sorted JDewey numbers, one entry per sequence of length >= level.
    seq_idx:
        For each entry, the ordinal of its sequence in the owning
        `ColumnarPostings.seqs` (used for erasure bookkeeping).
    distinct / run_starts:
        Run-length view: ``values[run_starts[i]:run_starts[i+1]]`` all
        equal ``distinct[i]``.  This mirrors the (v, r, c) triples of
        section III-D.
    """

    __slots__ = ("level", "values", "seq_idx", "distinct", "run_starts")

    def __init__(self, level: int, values: np.ndarray, seq_idx: np.ndarray):
        self.level = level
        self.values = values
        self.seq_idx = seq_idx
        if len(values):
            distinct, starts = np.unique(values, return_index=True)
        else:
            distinct = np.empty(0, dtype=np.int64)
            starts = np.empty(0, dtype=np.int64)
        self.distinct = distinct
        self.run_starts = np.append(starts, len(values)).astype(np.int64)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def n_distinct(self) -> int:
        return len(self.distinct)

    def run_of(self, value: int) -> Tuple[int, int]:
        """Position range [a, b) of `value` inside `values` (empty if absent)."""
        i = int(np.searchsorted(self.distinct, value))
        if i >= len(self.distinct) or self.distinct[i] != value:
            return 0, 0
        return int(self.run_starts[i]), int(self.run_starts[i + 1])

    def runs_of(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Bulk `run_of`: (lows, highs) position ranges for `values`.

        Every value must be present in `distinct` (join outputs always
        are -- they come from intersecting distinct arrays); absent
        values would silently alias a neighbouring run.
        """
        idx = np.searchsorted(self.distinct, values)
        return self.run_starts[idx], self.run_starts[idx + 1]

    def ordinal_spans(self, lows: np.ndarray, highs: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Sequence-ordinal spans [lo, hi) covering each run [a, b).

        The span is the erasure currency of section III-E: it includes
        ordinals of shorter sequences interleaved within the run, which
        is exactly the range rule ("all the sequences within A_k").
        Runs must be non-empty.
        """
        return self.seq_idx[lows], self.seq_idx[highs - 1] + 1

    def run_seq_indices(self, value: int) -> np.ndarray:
        """Sequence ordinals of the run for `value`."""
        a, b = self.run_of(value)
        return self.seq_idx[a:b]

    def contains(self, value: int) -> bool:
        a, b = self.run_of(value)
        return b > a


class ColumnarPostings:
    """All occurrences of one term in the columnar encoding.

    ``seqs`` is sorted in JDewey order; ``scores[i]`` is the local score
    ``g`` of occurrence ``seqs[i]``; ``lengths[i] == len(seqs[i])`` is the
    occurrence's level.  Columns are materialized lazily and cached.
    """

    def __init__(self, term: str, seqs: List[JDeweySeq],
                 scores: Sequence[float]):
        order = sorted(range(len(seqs)), key=lambda i: seqs[i])
        self.term = term
        self.seqs: List[JDeweySeq] = [seqs[i] for i in order]
        self.scores = np.asarray([scores[i] for i in order], dtype=np.float64)
        self.lengths = np.asarray([len(s) for s in self.seqs], dtype=np.int64)
        self.max_len = int(self.lengths.max()) if len(self.seqs) else 0
        self._columns: Dict[int, Column] = {}

    def __len__(self) -> int:
        return len(self.seqs)

    def column(self, level: int) -> Column:
        """The column for `level` (1-based); empty beyond `max_len`."""
        if level < 1:
            raise ValueError("levels are 1-based")
        cached = self._columns.get(level)
        if cached is not None:
            return cached
        mask = self.lengths >= level
        seq_idx = np.nonzero(mask)[0].astype(np.int64)
        values = np.asarray([self.seqs[i][level - 1] for i in seq_idx],
                            dtype=np.int64)
        column = Column(level, values, seq_idx)
        self._columns[level] = column
        return column

    def value_at(self, ordinal: int, level: int) -> int:
        """JDewey number of sequence `ordinal` at `level`.

        The base class reads the materialized sequence; the lazy
        disk-backed subclass resolves it from the column instead, so
        cursors never force full sequences into memory.
        """
        return int(self.seqs[ordinal][level - 1])

    def has_exact_length(self, level: int) -> bool:
        """True iff some occurrence sits exactly at `level`.

        Used by the top-K level-skipping rule (section IV-C): a column
        whose scores are all damped copies of the column below cannot
        raise the threshold.
        """
        return bool(np.any(self.lengths == level))

    def max_score(self) -> float:
        return float(self.scores.max()) if len(self.scores) else 0.0


class ColumnarIndex:
    """JDewey columnar inverted index over one document.

    Also owns the ``(level, number) -> node`` map used to materialize
    results, since a JDewey number plus its level uniquely identifies a
    node (the representational advantage section III-A highlights).
    """

    def __init__(self, tree: XMLTree, tokenizer: Optional[Tokenizer] = None,
                 ranking: Optional[RankingModel] = None):
        if not tree.frozen:
            raise ValueError("index a frozen tree")
        root_jdewey = tree.root.jdewey
        if not root_jdewey:
            raise ValueError("assign JDewey numbers before indexing "
                             "(repro.xmltree.encode_tree)")
        self.tree = tree
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.ranking = ranking if ranking is not None else RankingModel()
        self._postings: Dict[str, ColumnarPostings] = {}
        self._node_by_level_number: Dict[Tuple[int, int], Node] = {}
        self.n_docs = 0
        self._build()

    @classmethod
    def from_postings(cls, tree: XMLTree,
                      postings: Dict[str, ColumnarPostings],
                      tokenizer: Optional[Tokenizer] = None,
                      ranking: Optional[RankingModel] = None,
                      n_docs: int = 0) -> "ColumnarIndex":
        """Wrap pre-built per-term postings (the persistence load path).

        The tree must carry the same JDewey numbering the postings were
        built against (re-encoding a saved document with the same gap is
        deterministic); only the node map is rebuilt.
        """
        index = cls.__new__(cls)
        index.tree = tree
        index.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        index.ranking = ranking if ranking is not None else RankingModel()
        index._postings = dict(postings)
        index._node_by_level_number = {}
        index.n_docs = n_docs
        for node in tree.iter_document_order():
            index._node_by_level_number[(node.level, node.jdewey[-1])] = node
        return index

    def _build(self) -> None:
        raw: Dict[str, List[Tuple[JDeweySeq, int, int]]] = {}
        for node in self.tree.iter_document_order():
            self._node_by_level_number[(node.level, node.jdewey[-1])] = node
            if not node.text:
                continue
            counts = self.tokenizer.term_frequencies(node.text)
            if not counts:
                continue
            self.n_docs += 1
            node_tokens = sum(counts.values())
            for term, tf in counts.items():
                raw.setdefault(term, []).append((node.jdewey, tf, node_tokens))
        for term, entries in raw.items():
            df = len(entries)
            seqs = [seq for seq, _, _ in entries]
            scores = [
                self.ranking.scorer.score(tf, df, self.n_docs, ntok)
                for _, tf, ntok in entries
            ]
            self._postings[term] = ColumnarPostings(term, seqs, scores)

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    @property
    def vocabulary(self) -> List[str]:
        return sorted(self._postings)

    def term_postings(self, term: str) -> ColumnarPostings:
        existing = self._postings.get(term)
        if existing is not None:
            return existing
        return ColumnarPostings(term, [], [])

    def document_frequency(self, term: str) -> int:
        return len(self.term_postings(term))

    def query_postings(self, terms: Sequence[str]) -> List[ColumnarPostings]:
        """Per-term postings ordered shortest first (left-deep join order)."""
        postings = [self.term_postings(t) for t in terms]
        postings.sort(key=len)
        return postings

    def node_at(self, level: int, number: int) -> Node:
        """Materialize the node identified by (level, JDewey number)."""
        return self._node_by_level_number[(level, number)]
