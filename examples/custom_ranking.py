"""Custom ranking: swapping the pieces of the scoring model.

The paper only assumes Monotonicity of the combining function F
(section II-B); this example shows the three pluggable pieces in
action -- the local scorer g(v, w), the damping d(Δl) and the combiner
F -- and how a weighted combiner reorders the top-K.

Run with::

    python examples/custom_ranking.py
"""

from repro import XMLDatabase
from repro.scoring.ranking import (ConstantScorer, DampingFunction,
                                   MaxCombiner, RankingModel,
                                   WeightedSumCombiner)

CATALOG = """
<store>
  <dept>
    <name>cameras</name>
    <product><title>vintage camera body</title>
             <blurb>restored vintage rangefinder camera kit</blurb></product>
    <product><title>camera strap</title>
             <blurb>leather strap</blurb></product>
  </dept>
  <dept>
    <name>books</name>
    <product><title>vintage poster book</title>
             <blurb>a book of vintage camera advertisements</blurb></product>
  </dept>
</store>
"""


def show(title, results, n=4):
    print(f"\n== {title} ==")
    for rank, r in enumerate(results[:n], start=1):
        print(f"  #{rank} <{r.node.tag}> {'.'.join(map(str, r.node.dewey))}"
              f"  score={r.score:.4f}"
              f"  witnesses={[round(w, 3) for w in r.witness_scores]}")


def main() -> None:
    # Default model: tf-idf local scores, d(l) = 0.9^l, F = sum.
    default_db = XMLDatabase.from_xml_text(CATALOG)
    show("default (tf-idf, 0.9^l, sum)",
         default_db.search_ranked("vintage camera"))

    # Weighted sum: the user cares 5x more about "vintage" than
    # "camera".  Works on the top-K path too -- the star-join bounds
    # fold per-slot weights.
    weighted_db = XMLDatabase.from_xml_text(
        CATALOG,
        ranking=RankingModel(combiner=WeightedSumCombiner([5.0, 1.0])))
    top = weighted_db.search_topk("vintage camera", k=3)
    show("weighted 5:1 toward 'vintage' (top-K path)", list(top))

    # Max combiner: a result is as good as its single best keyword.
    max_db = XMLDatabase.from_xml_text(
        CATALOG, ranking=RankingModel(combiner=MaxCombiner()))
    show("F = max", max_db.search_ranked("vintage camera"))

    # No damping + constant local scores: pure structural containment,
    # every result scores the keyword count.
    flat_db = XMLDatabase.from_xml_text(
        CATALOG, ranking=RankingModel(scorer=ConstantScorer(1.0),
                                      damping=DampingFunction(1.0)))
    show("constant scores, no damping",
         flat_db.search_ranked("vintage camera"))

    # Monotonicity sanity: under every model the top-K prefix matches
    # the sorted complete result set.
    for db in (default_db, weighted_db, max_db):
        top2 = [r.score for r in db.search_topk("vintage camera", 2)]
        full = [r.score for r in db.search_ranked("vintage camera")[:2]]
        assert top2 == full
    print("\ntop-K prefixes match ranked complete sets under all models")


if __name__ == "__main__":
    main()
