"""JDewey maintenance and on-disk index formats.

Demonstrates the parts of the paper outside query processing: gap-based
insertion into the JDewey numbering (section III-A), the partial
re-encode when a gap overflows, the two column-compression schemes
(section III-D), and the serialized index sizes of Table I.

Run with::

    python examples/index_maintenance.py
"""

from repro import XMLDatabase, parse_xml
from repro.index import storage
from repro.index.compression import (choose_scheme, compress_column,
                                     uncompressed_size)
from repro.xmltree.jdewey import JDeweyEncoder
from repro.xmltree.tree import Node

DOC = """
<dblp>
  <conference><name>icde</name>
    <year>2010
      <paper><title>xml keyword search</title></paper>
      <paper><title>top-k join processing</title></paper>
    </year>
  </conference>
  <conference><name>vldb</name>
    <year>2010
      <paper><title>column stores and compression</title></paper>
    </year>
  </conference>
</dblp>
"""


def dump_levels(tree) -> None:
    by_level = {}
    for node in tree.nodes:
        by_level.setdefault(len(node.jdewey), []).append(node.jdewey[-1])
    for level in sorted(by_level):
        print(f"  level {level}: {sorted(by_level[level])}")


def main() -> None:
    tree = parse_xml(DOC)
    encoder = JDeweyEncoder(tree, gap=2)
    print("JDewey numbers per level (gap=2 reserves two spare slots per "
          "parent):")
    dump_levels(tree)

    # Cheap insertion: the reserved slot absorbs the new paper.
    year = tree.find_all(lambda n: n.tag == "year")[0]
    paper = Node("paper")
    paper.add_child(Node("title", "a freshly inserted paper"))
    encoder.insert(year, paper)
    encoder.validate()
    print(f"\ninserted one paper; re-encodes so far: "
          f"{encoder.reencode_count}")

    # Overflow: exhaust the gap and watch the partial re-encode.
    for i in range(4):
        extra = Node("paper")
        extra.add_child(Node("title", f"overflow paper {i}"))
        encoder.insert(year, extra)
    encoder.validate()
    print(f"inserted four more; re-encodes now: {encoder.reencode_count}")
    print("numbers after the partial re-encode (the overflowing subtree "
          "moved to the numeric end of each level):")
    dump_levels(tree)

    # Column compression: scheme choice follows column cardinality.
    db = XMLDatabase.generate_dblp(seed=3, n_papers=800)
    postings = db.columnar_index.term_postings("w00000")  # frequent word
    print(f"\ncolumns of the most frequent background term "
          f"(df={len(postings)}):")
    for level in range(1, postings.max_len + 1):
        column = postings.column(level)
        scheme, blob = compress_column(column.values)
        raw = uncompressed_size(column.values)
        print(f"  level {level}: {len(column)} entries, "
              f"{column.n_distinct} distinct -> {scheme:>5} "
              f"{raw:>6}B raw / {len(blob):>5}B compressed")
    assert choose_scheme(postings.column(1).values) == "rle"

    # Table I in miniature: serialized sizes of every index family.
    report = storage.measure_sizes(db.columnar_index, db.inverted_index)
    print("\nindex sizes (synthetic DBLP, 800 papers):")
    for name, size in report.as_rows():
        print(f"  {name:<22}{size / 1024:>10.1f} KiB")

    # The columnar blob round-trips exactly.
    blob = storage.serialize_columnar_index(db.columnar_index)
    loaded = storage.deserialize_columnar_index(blob)
    assert loaded["w00000"].seqs == postings.seqs
    print(f"\nserialized columnar index: {len(blob) / 1024:.1f} KiB, "
          f"round-trip OK ({len(loaded)} terms)")


if __name__ == "__main__":
    main()
