"""Quickstart: index an XML document and run keyword searches.

Run with::

    python examples/quickstart.py
"""

from repro import XMLDatabase

BIB = """
<bib>
  <book>
    <title>XML query processing</title>
    <chapter>
      <section>keyword search semantics</section>
      <section>top-k processing over XML data</section>
    </chapter>
  </book>
  <article>
    <title>relational join algorithms</title>
    <abstract>merge join and index join for XML keyword search</abstract>
  </article>
  <article>
    <title>ranked retrieval</title>
    <abstract>scoring and top-k pruning for keyword queries</abstract>
  </article>
</bib>
"""


def main() -> None:
    db = XMLDatabase.from_xml_text(BIB)
    print(f"indexed {len(db)} nodes, depth {db.tree.depth}")
    print(f"vocabulary size: {len(db.inverted_index.vocabulary)}")

    # Complete result set under the two LCA-variant semantics.
    for semantics in ("elca", "slca"):
        print(f"\n== {semantics.upper()} results for 'xml keyword' ==")
        for r in db.search("xml keyword", semantics=semantics):
            path = ".".join(map(str, r.node.dewey))
            print(f"  <{r.node.tag}> at {path}  score={r.score:.3f}")

    # Top-K: the join-based top-K algorithm emits results best-first and
    # stops as soon as the K-th result is provably safe.
    print("\n== top-2 for 'xml keyword search' ==")
    top = db.search_topk("xml keyword search", k=2)
    for rank, r in enumerate(top, start=1):
        print(f"  #{rank}: <{r.node.tag}>  score={r.score:.3f} "
              f"witnesses={[round(w, 3) for w in r.witness_scores]}")
    print(f"  terminated early: {top.terminated_early}")

    # Progressive results: the stream yields each answer as soon as its
    # score provably dominates everything unseen.
    print("\n== streaming 'keyword search' ==")
    for rank, r in enumerate(db.search_stream("keyword search"), start=1):
        print(f"  streamed #{rank}: <{r.node.tag}> score={r.score:.3f}")
        if rank == 2:
            break  # abandoning the stream abandons the remaining work

    # Every algorithm answers the same question; pick per workload.
    for algorithm in ("join", "stack", "index"):
        results = db.search("join xml", algorithm=algorithm)
        print(f"\n'{algorithm}' found {len(results)} results for "
              f"'join xml': {[r.node.tag for r in results]}")


if __name__ == "__main__":
    main()
