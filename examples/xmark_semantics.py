"""ELCA versus SLCA on a synthetic XMark document.

Walks through the semantic difference the paper's Figure 1 illustrates:
nested results survive under ELCA but only the minimal ones under SLCA,
and damping makes compact subtrees outrank sprawling ones.

Run with::

    python examples/xmark_semantics.py
"""

from repro import XMLDatabase
from repro.datagen import CorrelatedGroup, PlantingPlan, XMarkGenerator


def show(results, limit=6):
    for r in results[:limit]:
        path = ".".join(map(str, r.node.dewey))
        print(f"  <{r.node.tag}> level={r.level} at {path} "
              f"score={r.score:.3f}")
    if len(results) > limit:
        print(f"  ... and {len(results) - limit} more")


def main() -> None:
    plan = PlantingPlan(correlated=[
        CorrelatedGroup(("vintage", "camera"), 60, rate=0.9),
        CorrelatedGroup(("antique", "clock", "auction"), 40, rate=0.8),
    ])
    print("generating XMark corpus ...")
    db = XMLDatabase.from_tree(
        XMarkGenerator(seed=11, scale=0.02, plan=plan).generate())
    print(f"  {len(db)} nodes, depth {db.tree.depth}")

    query = "vintage camera"
    elca = db.search(query, semantics="elca")
    slca = db.search(query, semantics="slca")
    print(f"\nELCA results for {query!r}: {len(elca)}")
    show(elca)
    print(f"\nSLCA results for {query!r}: {len(slca)}")
    show(slca)

    nested = [r for r in elca
              if any(r.node.is_ancestor_of(s.node) for s in elca
                     if s is not r)]
    print(f"\nELCAs that contain another ELCA (pruned by SLCA): "
          f"{len(nested)}")
    show(nested, limit=3)

    # Damping in action: the same result set ranked with and without it.
    from repro.scoring.ranking import DampingFunction, RankingModel

    flat_db = XMLDatabase.from_tree(
        XMarkGenerator(seed=11, scale=0.02, plan=plan).generate(),
        ranking=RankingModel(damping=DampingFunction(1.0)))
    damped_top = db.search_ranked(query)[:5]
    flat_top = flat_db.search_ranked(query)[:5]
    print("\ntop-5 with damping d(l) = 0.9^l  (compact subtrees win):")
    show(damped_top)
    print("\ntop-5 without damping (d = 1):")
    show(flat_top)

    avg = lambda rs: sum(r.level for r in rs) / max(len(rs), 1)
    print(f"\naverage result level: damped={avg(damped_top):.2f} "
          f"undamped={avg(flat_top):.2f} (damping favours deeper, "
          f"tighter results)")


if __name__ == "__main__":
    main()
