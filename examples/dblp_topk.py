"""Top-K search over a synthetic DBLP: the paper's Figure 10 in miniature.

Generates a DBLP-like corpus with planted low/high-frequency keywords
and correlated keyword groups, then compares the three top-K strategies
(join-based top-K, general join-based + truncate, RDIL) on both
correlated and uncorrelated queries.

Run with::

    python examples/dblp_topk.py
"""

import time

from repro import XMLDatabase
from repro.datagen import DBLPGenerator
from repro.datagen.workload import WorkloadBuilder

K = 10


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000


def main() -> None:
    builder = WorkloadBuilder(high_freq=1500, low_freqs=(10, 100, 800),
                              per_cell=2, max_keywords=3,
                              correlated_entities=300)
    print("generating DBLP corpus ...")
    gen = DBLPGenerator(seed=7, n_papers=6000, plan=builder.plan())
    db = XMLDatabase.from_tree(gen.generate())
    print(f"  {len(db)} nodes, depth {db.tree.depth}")
    print("building indexes ...")
    db.columnar_index
    db.inverted_index

    print(f"\n== correlated queries (paper Fig. 10(b)): top-{K} ==")
    header = f"{'query':<28}{'topk-join':>12}{'join+sort':>12}{'rdil':>12}"
    print(header)
    for spec in builder.correlated_queries()[:4]:
        times = {}
        for algorithm in ("topk-join", "join", "rdil"):
            result, ms = timed(
                lambda a=algorithm: db.search_topk(list(spec.terms), K,
                                                   algorithm=a))
            times[algorithm] = ms
        label = " ".join(spec.terms)[:26]
        print(f"{label:<28}{times['topk-join']:>10.1f}ms"
              f"{times['join']:>10.1f}ms{times['rdil']:>10.1f}ms")

    print(f"\n== frequency sweep, k=2 (paper Fig. 10(a)): top-{K} ==")
    print(f"{'low freq':<12}{'topk-join':>12}{'join+sort':>12}{'rdil':>12}")
    for spec in builder.frequency_sweep(n_keywords=2)[::2]:
        times = {}
        for algorithm in ("topk-join", "join", "rdil"):
            _, ms = timed(
                lambda a=algorithm: db.search_topk(list(spec.terms), K,
                                                   algorithm=a))
            times[algorithm] = ms
        print(f"{spec.low_frequency:<12}{times['topk-join']:>10.1f}ms"
              f"{times['join']:>10.1f}ms{times['rdil']:>10.1f}ms")

    # Show the actual top results for one correlated query.
    spec = builder.correlated_queries()[0]
    print(f"\n== top-{K} results for {' '.join(spec.terms)!r} ==")
    top = db.search_topk(list(spec.terms), K)
    for rank, r in enumerate(top, start=1):
        title = r.node.subtree_text()[:60]
        print(f"  #{rank} <{r.node.tag}> score={r.score:.3f}  {title}...")
    print(f"  early termination: {top.terminated_early}, "
          f"tuples scanned: {top.stats.tuples_scanned}")


if __name__ == "__main__":
    main()
