"""Ablation A5: sensitivity to K (the paper fixes K = 10).

Extension experiment: the early-terminating top-K algorithm's work
should grow sub-linearly with K on correlated queries (each extra
result costs a few more cursor pops), while the complete-evaluate-then-
truncate plan is constant in K by construction.
"""

import pytest

from repro.algorithms.topk_keyword import TopKKeywordSearch

K_VALUES = (1, 10, 50)


@pytest.mark.parametrize("k", K_VALUES)
def test_topk_cost_vs_k(benchmark, bench, k):
    db = bench.dblp
    spec = bench.builder.correlated_queries()[0]
    bench.warm(db, [spec])
    engine = TopKKeywordSearch(db.columnar_index)
    result = benchmark.pedantic(
        lambda: engine.search(list(spec.terms), k),
        rounds=2, iterations=1, warmup_rounds=1)
    benchmark.extra_info.update(k=k, tuples=result.stats.tuples_scanned,
                                emitted=len(result))


def test_scan_grows_sublinearly_with_k(benchmark, bench):
    db = bench.dblp
    spec = bench.builder.correlated_queries()[0]
    bench.warm(db, [spec])
    engine = TopKKeywordSearch(db.columnar_index)

    def run():
        return {k: engine.search(list(spec.terms), k).stats.tuples_scanned
                for k in K_VALUES}

    scans = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({str(k): v for k, v in scans.items()})
    assert scans[1] <= scans[10] <= scans[50]
    # 50x larger K must cost far less than 50x the scan volume.
    assert scans[50] < 10 * max(scans[1], 1)
