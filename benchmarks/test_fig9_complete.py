"""Figure 9: complete-result query performance.

Panels (a)-(d): k = 2..5 keywords, one fixed high-frequency keyword,
low frequency sweeping a 10x-per-step ladder.  Paper shape:

* the stack-based algorithm is flat in the low frequency (it always
  scans every list, so the fixed high-frequency keyword dominates);
* the index-based algorithm matches the join-based one at tiny low
  frequencies but degrades steeply as the short list grows;
* the join-based algorithm is lowest throughout (the dynamic planner
  switches from the index join to the merge join along the way).

Panels (e)-(f): all keywords at the same frequency.  Paper shape: the
stack-based algorithm edges out the index-based one, and the join-based
algorithm beats both.
"""

import pytest

from repro.bench.harness import fig9_cells, run_complete

ALGORITHMS = ("join", "stack", "index")


def _cell(bench, n_keywords, low):
    for cell_low, queries in fig9_cells(bench, n_keywords):
        if cell_low == low:
            return queries
    raise KeyError(low)


def _low_freqs(bench):
    return bench.config.low_freqs


class TestFig9Sweep:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("low_index", [0, 1, 2, 3])
    @pytest.mark.parametrize("n_keywords", [2, 3, 4, 5])
    def test_cell(self, benchmark, bench, n_keywords, low_index, algorithm):
        lows = _low_freqs(bench)
        if low_index >= len(lows):
            pytest.skip("scale has fewer frequency steps")
        low = lows[low_index]
        queries = _cell(bench, n_keywords, low)
        db = bench.dblp
        bench.warm(db, queries)
        benchmark.extra_info.update(panel=f"fig9-{'abcd'[n_keywords - 2]}",
                                    k=n_keywords, low_freq=low,
                                    algorithm=algorithm)
        total = benchmark.pedantic(
            lambda: run_complete(db, queries, algorithm),
            rounds=2, iterations=1, warmup_rounds=1)
        benchmark.extra_info["results"] = total


class TestFig9EqualFrequency:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("n_keywords", [2, 3, 4, 5])
    @pytest.mark.parametrize("freq_index", [1, 2])
    def test_cell(self, benchmark, bench, freq_index, n_keywords,
                  algorithm):
        lows = _low_freqs(bench)
        freq = lows[min(freq_index, len(lows) - 1)]
        queries = bench.builder.equal_frequency(n_keywords, freq)
        db = bench.dblp
        bench.warm(db, queries)
        benchmark.extra_info.update(panel="fig9-ef", k=n_keywords,
                                    freq=freq, algorithm=algorithm)
        total = benchmark.pedantic(
            lambda: run_complete(db, queries, algorithm),
            rounds=2, iterations=1, warmup_rounds=1)
        benchmark.extra_info["results"] = total
