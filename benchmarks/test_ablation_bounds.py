"""Ablation A2 (section IV-B): star-join group bound vs classic HRJN.

The paper proves the group bound is never looser; this ablation checks
that the proof cashes out as fewer tuples retrieved before the top-K
unblocks, both for the standalone operator and inside the keyword
algorithm.
"""

import pytest

from repro.algorithms.topk_join import CLASSIC, GROUP, topk_join
from repro.algorithms.topk_keyword import TopKKeywordSearch


def _relations(n, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    relations = []
    for r in range(3):
        ids = rng.permutation(n)
        scores = np.sort(rng.exponential(1.0, size=n))[::-1]
        relations.append([(int(i), float(s))
                          for i, s in zip(ids, scores)])
    return relations


class TestOperatorLevel:
    @pytest.mark.parametrize("bound", [GROUP, CLASSIC])
    def test_retrieval_depth(self, benchmark, bench, bound):
        relations = _relations(4000, seed=13)
        emitted, cost = benchmark.pedantic(
            lambda: topk_join(relations, k=10, bound_mode=bound),
            rounds=2, iterations=1, warmup_rounds=1)
        benchmark.extra_info.update(bound=bound, tuples=cost,
                                    emitted=len(emitted))

    def test_group_never_retrieves_more(self, benchmark, bench):
        def run():
            results = {}
            for seed in (1, 2, 3, 4, 5):
                relations = _relations(2000, seed)
                _, group_cost = topk_join(relations, 10, GROUP)
                _, classic_cost = topk_join(relations, 10, CLASSIC)
                results[seed] = (group_cost, classic_cost)
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        for seed, (group_cost, classic_cost) in results.items():
            assert group_cost <= classic_cost, seed
        benchmark.extra_info["costs"] = {
            str(seed): costs for seed, costs in results.items()}


class TestKeywordLevel:
    @pytest.mark.parametrize("bound", [GROUP, CLASSIC])
    def test_correlated_query_scan_depth(self, benchmark, bench, bound):
        db = bench.dblp
        spec = bench.builder.correlated_queries()[2]
        bench.warm(db, [spec])
        engine = TopKKeywordSearch(db.columnar_index, bound_mode=bound)
        result = benchmark.pedantic(
            lambda: engine.search(list(spec.terms), bench.config.topk),
            rounds=2, iterations=1, warmup_rounds=1)
        benchmark.extra_info.update(bound=bound,
                                    tuples=result.stats.tuples_scanned)

    def test_group_bound_no_worse_end_to_end(self, benchmark, bench):
        db = bench.dblp
        queries = bench.builder.correlated_queries()

        def run():
            costs = {}
            for spec in queries:
                bench.warm(db, [spec])
                per_bound = {}
                for bound in (GROUP, CLASSIC):
                    engine = TopKKeywordSearch(db.columnar_index,
                                               bound_mode=bound)
                    result = engine.search(list(spec.terms),
                                           bench.config.topk)
                    per_bound[bound] = result.stats.tuples_scanned
                costs[spec.label] = per_bound
            return costs

        costs = benchmark.pedantic(run, rounds=1, iterations=1)
        for label, per_bound in costs.items():
            assert per_bound[GROUP] <= per_bound[CLASSIC], label
            benchmark.extra_info[label] = per_bound
