"""Figure 9 on XMark ("Results from XMark are similar", section V-B).

A compact replica of the DBLP sweep on the second corpus: the deeper,
less uniform auction-site tree must produce the same ordering of
algorithms -- join-based lowest, index-based degrading with the low
frequency, stack-based governed by the high-frequency list.
"""

import pytest

from repro.bench.harness import fig9_cells, run_complete

ALGORITHMS = ("join", "stack", "index")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("low_index", [0, 2])
@pytest.mark.parametrize("n_keywords", [2, 4])
def test_xmark_cell(benchmark, bench, n_keywords, low_index, algorithm):
    lows = bench.config.low_freqs
    low = lows[min(low_index, len(lows) - 1)]
    queries = [q for cell_low, cell in fig9_cells(bench, n_keywords)
               for q in cell if cell_low == low]
    db = bench.xmark
    bench.warm(db, queries)
    benchmark.extra_info.update(panel="fig9-xmark", k=n_keywords,
                                low_freq=low, algorithm=algorithm)
    total = benchmark.pedantic(
        lambda: run_complete(db, queries, algorithm),
        rounds=2, iterations=1, warmup_rounds=1)
    benchmark.extra_info["results"] = total


def test_xmark_algorithms_agree(benchmark, bench):
    """Cross-corpus sanity inside the benchmark environment: all three
    engines return the same result count on XMark."""
    db = bench.xmark
    queries = bench.builder.correlated_queries()[:2]
    bench.warm(db, queries)

    def run():
        return {algorithm: run_complete(db, queries, algorithm)
                for algorithm in ALGORITHMS}

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts["join"] == counts["stack"] == counts["index"]
    benchmark.extra_info.update(counts)
