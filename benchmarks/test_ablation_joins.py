"""Ablation A1 (section III-C): join-algorithm selection per level.

The dynamic planner should track the better of the two forced plans in
every frequency regime: probe-count like the forced index join when the
intermediate result is tiny, scan-count like the forced merge join when
the sides are comparable.  Work counters carry the signal (numpy makes
both intersection kernels fast in absolute wall-clock at this scale).
"""

import pytest

from repro.algorithms.join_based import JoinBasedSearch
from repro.bench.harness import fig9_cells
from repro.planner.plans import JoinPlanner

POLICIES = ("dynamic", "merge", "index")


def run_policy(db, queries, policy):
    engine = JoinBasedSearch(db.columnar_index, JoinPlanner(policy))
    scanned = lookups = 0
    for spec in queries:
        _, stats = engine.evaluate(list(spec.terms), "elca",
                                   with_scores=False)
        scanned += stats.tuples_scanned
        lookups += stats.lookups
    return scanned, lookups


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("low_index", [0, 2])
def test_policy_cell(benchmark, bench, low_index, policy):
    lows = bench.config.low_freqs
    low = lows[min(low_index, len(lows) - 1)]
    queries = [q for cell_low, cell in fig9_cells(bench, 3)
               for q in cell if cell_low == low]
    db = bench.dblp
    bench.warm(db, queries)
    scanned, lookups = benchmark.pedantic(
        lambda: run_policy(db, queries, policy),
        rounds=2, iterations=1, warmup_rounds=1)
    benchmark.extra_info.update(low_freq=low, policy=policy,
                                tuples=scanned, probes=lookups)


def test_dynamic_never_scans_more_than_merge(benchmark, bench):
    """At the lowest frequency the dynamic plan must avoid the merge
    join's full scans of the high-frequency columns."""
    db = bench.dblp
    low = bench.config.low_freqs[0]
    queries = [q for cell_low, cell in fig9_cells(bench, 3)
               for q in cell if cell_low == low]
    bench.warm(db, queries)

    def run():
        return {policy: run_policy(db, queries, policy)
                for policy in POLICIES}

    by_policy = benchmark.pedantic(run, rounds=1, iterations=1)
    dynamic_scanned = by_policy["dynamic"][0]
    merge_scanned = by_policy["merge"][0]
    assert dynamic_scanned < merge_scanned / 2
