"""Microbenchmark: the vectorized level loop vs the scalar reference.

Times the Figure 9 DBLP high-frequency keyword pair through both
execution strategies of `JoinBasedSearch` and checks they agree exactly;
the equivalence assertions are the safety net, the timings are the
payload (printed, and emitted as ``BENCH_hotpath.json`` by
``python -m repro.bench.baseline``).  Run in smoke mode with
``REPRO_BENCH_SCALE=small``; no speed thresholds are asserted here --
CI machines are too noisy -- the committed baseline carries those
numbers.
"""

import json

import numpy as np

from repro.algorithms.join_based import JoinBasedSearch
from repro.bench.baseline import (SCHEMA, _column_payloads, _fig9_high_pair,
                                  hotpath_report)
from repro.bench.harness import timed
from repro.index.compression import decompress_column


def test_vectorized_equals_scalar_on_hotpath(bench):
    db = bench.dblp
    queries = _fig9_high_pair(bench)
    assert queries, "workload must plant the high-frequency pair"
    scalar_engine = JoinBasedSearch(db.columnar_index, vectorized=False)
    vector_engine = JoinBasedSearch(db.columnar_index, vectorized=True)
    for semantics in ("elca", "slca"):
        for terms in queries:
            scalar, s_stats = scalar_engine.evaluate(terms, semantics)
            vector, v_stats = vector_engine.evaluate(terms, semantics)
            assert [(r.node.dewey, r.level, r.score, r.witness_scores)
                    for r in scalar] == \
                [(r.node.dewey, r.level, r.score, r.witness_scores)
                 for r in vector]
            assert s_stats.as_dict() == v_stats.as_dict()


def test_level_loop_timings(bench):
    db = bench.dblp
    queries = _fig9_high_pair(bench)
    specs = [s for s in bench.builder.frequency_sweep(2)
             if s.low_frequency == max(bench.config.low_freqs)]
    bench.warm(db, specs)
    scalar_engine = JoinBasedSearch(db.columnar_index, vectorized=False)
    vector_engine = JoinBasedSearch(db.columnar_index, vectorized=True)

    def run(engine):
        for terms in queries:
            engine.evaluate(terms, "elca")

    scalar_ms = timed(lambda: run(scalar_engine))
    vector_ms = timed(lambda: run(vector_engine))
    print(f"\nlevel loop: scalar {scalar_ms:.2f}ms, "
          f"vectorized {vector_ms:.2f}ms, "
          f"speedup {scalar_ms / vector_ms:.2f}x")
    assert vector_ms > 0 and scalar_ms > 0


def test_decompress_column_timings(bench):
    """Decode every workload-term column both ways: equivalence asserted,
    speedup printed (the committed baseline carries the threshold)."""
    db = bench.dblp
    payloads = _column_payloads(db, _fig9_high_pair(bench))
    assert payloads, "workload terms must have columns"
    for scheme, payload in payloads:
        np.testing.assert_array_equal(
            decompress_column(scheme, payload, vectorized=True),
            decompress_column(scheme, payload, vectorized=False))

    def decode_all(vectorized):
        for scheme, payload in payloads:
            decompress_column(scheme, payload, vectorized=vectorized)

    scalar_ms = timed(lambda: decode_all(False))
    vector_ms = timed(lambda: decode_all(True))
    print(f"\ndecompress_column: scalar {scalar_ms:.2f}ms, "
          f"vectorized {vector_ms:.2f}ms, "
          f"speedup {scalar_ms / vector_ms:.2f}x")
    assert vector_ms > 0 and scalar_ms > 0


def test_hotpath_report_schema(bench, tmp_path):
    report = hotpath_report(bench, repeats=1, scale_label="smoke")
    assert report["schema"] == SCHEMA
    assert set(report["speedups"]) == {"level_loop", "erased_counts",
                                       "mark_many", "decompress_column",
                                       "result_cache"}
    pool = report["batch_pool"]
    assert set(pool["thread"]) == set(pool["process"]) == \
        {str(width) for width in pool["workers"]}
    assert all(qps > 0 for mode in ("thread", "process")
               for qps in pool[mode].values())
    for entry in report["ops"].values():
        assert entry["p50_ms"] > 0
        assert entry["p95_ms"] >= entry["p50_ms"]
    # The report round-trips through JSON (the emitter's output format).
    path = tmp_path / "BENCH_hotpath.json"
    path.write_text(json.dumps(report))
    assert json.loads(path.read_text())["ops"]
