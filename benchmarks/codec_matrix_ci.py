"""CI gate for the format-v4 codec generation (the `perf-audit` job).

Builds one corpus, saves it as a v3 and a v4 container, and asserts
the two claims the adaptive codec selector makes:

* **Equivalence** — every query answers identically (dewey, level,
  score, witness scores) across {v3, v4} x {eager, lazy} loads, and a
  lazy v4 load with the scalar decoders (``vectorized=False``) agrees
  too, so the numpy kernels never diverge from the reference path;
* **Size** — the v4 ``columnar.bin`` is never larger than the v3 one
  for the same corpus (choosing per column by measured encoded size
  can only do better).

It also prints the v4 chosen-codec mix so the CI log shows what the
selector actually did.  Exits non-zero on any violation::

    PYTHONPATH=src python benchmarks/codec_matrix_ci.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import XMLDatabase                       # noqa: E402
from repro.diskdb import load_database, save_database  # noqa: E402
from repro.index import storage                     # noqa: E402
from repro.index.compression import SCHEME_NAMES    # noqa: E402

QUERIES = ["paper analysis", "xml database", "query processing",
           "data systems", "conference paper", "algorithm evaluation",
           "database query xml"]


def transcript(db):
    out = []
    for query in QUERIES:
        results = db.search(query, use_cache=False)
        out.append([(r.node.dewey, r.level, r.score,
                     tuple(r.witness_scores)) for r in results])
        top = db.search_topk(query, k=5)
        out.append([(r.node.dewey, r.level, r.score,
                     tuple(r.witness_scores)) for r in top])
    return out


def codec_mix(path):
    blob = open(os.path.join(path, "columnar.bin"), "rb").read()
    _algo, refs = storage.scan_v4_container(blob)
    mix = {}
    for ref in refs:
        _l, _s, level_payloads = storage.parse_v4_payload(
            ref.term, blob[ref.offset: ref.offset + ref.length])
        for scheme, _payload in level_payloads:
            assert scheme in SCHEME_NAMES.values(), scheme
            mix[scheme] = mix.get(scheme, 0) + 1
    return dict(sorted(mix.items()))


def main() -> int:
    print("building corpus ...", flush=True)
    db = XMLDatabase.generate_dblp(seed=11, n_papers=600)
    reference = transcript(db)
    failures = []

    with tempfile.TemporaryDirectory() as root:
        paths = {}
        for version in (3, 4):
            paths[version] = os.path.join(root, f"db-v{version}")
            save_database(db, paths[version], format_version=version)

        v3_size = os.path.getsize(os.path.join(paths[3], "columnar.bin"))
        v4_size = os.path.getsize(os.path.join(paths[4], "columnar.bin"))
        print(f"columnar.bin: v3 {v3_size} bytes, v4 {v4_size} bytes "
              f"({v4_size - v3_size:+d})")
        if v4_size > v3_size:
            failures.append(
                f"v4 container larger than v3: {v4_size} > {v3_size}")

        print(f"v4 codec mix: {codec_mix(paths[4])}")

        for version in (3, 4):
            for lazy in (False, True):
                loaded = load_database(paths[version], lazy=lazy,
                                       verify="lazy" if lazy else "eager")
                if transcript(loaded) != reference:
                    failures.append(
                        f"v{version} lazy={lazy} diverged from in-memory")
                else:
                    print(f"v{version} lazy={lazy}: identical answers")

        scalar = load_database(paths[4], lazy=True, verify="lazy",
                               vectorized=False)
        if transcript(scalar) != reference:
            failures.append("v4 scalar decoders diverged")
        else:
            print("v4 scalar decoders: identical answers")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("codec matrix:", "FAIL" if failures else "PASS")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
