"""CI smoke for the `repro serve` daemon (the `serve` workflow job).

Builds a sharded index via the CLI, starts the real daemon process,
fires a mixed concurrent workload (cold + warm + overloaded + bad
requests) from threaded HTTP clients, then scrapes ``/metrics`` and
asserts the serving invariants:

* admission / deadline / fan-out instruments are all present,
* the workload produced requests and at least one cache-driven rerun,
* queue-depth and inflight gauges returned to 0,
* the daemon left its observability trail: one access-log JSONL record
  per request (shed/timed-out ones included), retained stitched traces
  behind ``/debug/traces``, trace-id exemplars on the latency
  histogram, and an ``/slo`` burn-rate report.

The access log (``access-log-ci.jsonl``), trace log
(``trace-log-ci.jsonl``) and SLO report (``slo-report-ci.json``) are
written to the working directory so the CI job can upload them as
artifacts.  Exits non-zero (with the offending metric text) on any
violation::

    PYTHONPATH=src python benchmarks/serve_ci_smoke.py
"""

import http.client
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

HOST = "127.0.0.1"
PORT = int(os.environ.get("REPRO_SERVE_SMOKE_PORT", "18473"))
QUERIES = ["w00000 w00001", "author00000", "w00002 w00000",
           "w00001 author00001", "w00003"]
ACCESS_LOG = "access-log-ci.jsonl"
TRACE_LOG = "trace-log-ci.jsonl"
SLO_REPORT = "slo-report-ci.json"


def wait_healthy(timeout_s: float = 30.0) -> None:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        try:
            with urllib.request.urlopen(
                    f"http://{HOST}:{PORT}/healthz", timeout=2) as resp:
                body = json.loads(resp.read())
                assert body["status"] == "ok", body
                return
        except (OSError, ValueError):
            time.sleep(0.2)
    raise SystemExit("daemon never became healthy")


def fire_workload() -> dict:
    statuses = []
    lock = threading.Lock()

    def client(worker: int) -> None:
        conn = http.client.HTTPConnection(HOST, PORT, timeout=30)
        local = []
        try:
            for round_no in range(3):
                for i, q in enumerate(QUERIES):
                    path = f"/topk?q={q.replace(' ', '+')}&k=5"
                    if (worker + i) % 4 == 0:     # some complete sets
                        path = f"/search?q={q.replace(' ', '+')}"
                    if round_no == 2 and i == 0:  # some budgeted
                        path += "&timeout_ms=1&partial=1"
                    conn.request("GET", path)
                    resp = conn.getresponse()
                    resp.read()
                    local.append(resp.status)
        finally:
            conn.close()
        with lock:
            statuses.extend(local)

    threads = [threading.Thread(target=client, args=(w,))
               for w in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    # a malformed request must come back typed, not crash the daemon
    try:
        urllib.request.urlopen(f"http://{HOST}:{PORT}/topk?k=5", timeout=5)
    except urllib.error.HTTPError as exc:
        assert exc.code == 400, exc.code
    else:
        raise AssertionError("missing q should be a 400")
    return {"statuses": statuses}


def scrape_metrics() -> str:
    with urllib.request.urlopen(
            f"http://{HOST}:{PORT}/metrics", timeout=5) as resp:
        return resp.read().decode("utf-8")


def fetch_json(path: str) -> dict:
    with urllib.request.urlopen(
            f"http://{HOST}:{PORT}{path}", timeout=5) as resp:
        return json.loads(resp.read())


def read_jsonl(path: str) -> list:
    out = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def gauge_value(text: str, name: str) -> float:
    match = re.search(rf"^{name} ([0-9.eE+-]+)$", text, re.M)
    assert match, f"{name} missing from /metrics"
    return float(match.group(1))


def main() -> int:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    for stale in (ACCESS_LOG, TRACE_LOG, SLO_REPORT):
        if os.path.exists(stale):
            os.unlink(stale)
    with tempfile.TemporaryDirectory(prefix="repro-serve-ci-") as tmp:
        db_dir = os.path.join(tmp, "db")
        subprocess.run(
            [sys.executable, "-m", "repro", "generate", "dblp", db_dir,
             "--papers", "500", "--shards", "4"],
            env=env, check=True, timeout=300)
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", db_dir,
             "--port", str(PORT), "--workers", "0",
             "--max-concurrency", "4", "--queue-limit", "16",
             "--access-log", ACCESS_LOG, "--trace-log", TRACE_LOG],
            env=env)
        try:
            wait_healthy()
            outcome = fire_workload()
            text = scrape_metrics()
            slo = fetch_json("/slo")
            traces = fetch_json("/debug/traces?limit=10")
        finally:
            daemon.terminate()
            daemon.wait(timeout=30)

    statuses = outcome["statuses"]
    assert statuses, "workload produced no responses"
    bad = [s for s in statuses if s not in (200, 429, 504)]
    assert not bad, f"untyped statuses under load: {bad}"
    assert statuses.count(200) > 0

    # admission / deadline / fan-out instruments present
    for needle in (
            'repro_serve_requests_total{outcome="ok"}',
            'repro_serve_rejects_total{reason="queue_full"}',
            'repro_serve_rejects_total{reason="deadline"}',
            'repro_serve_shard_ms_count{shard="0"}',
            'repro_serve_shard_ms_count{shard="3"}',
            "repro_serve_queue_wait_ms_count",
            "repro_serve_latency_ms_count"):
        assert needle in text, f"{needle} missing from /metrics"
    ok = re.search(
        r'repro_serve_requests_total\{outcome="ok"\} ([0-9.]+)', text)
    assert ok and float(ok.group(1)) > 0, "no successful requests counted"

    # the queue drained: depth and inflight gauges are back to zero
    assert gauge_value(text, "repro_serve_queue_depth") == 0.0
    assert gauge_value(text, "repro_serve_inflight") == 0.0

    # observability trail: one access record per response (the extra
    # malformed probe logs a 400 too), matching the statuses seen
    records = read_jsonl(ACCESS_LOG)
    assert len(records) >= len(statuses), \
        f"access log has {len(records)} records for {len(statuses)} responses"
    logged = [r["status"] for r in records]
    for status in set(statuses):
        assert status in logged, f"status {status} never access-logged"
    assert any(r["status"] == 400 for r in records), \
        "bad request missing from access log"
    assert all(r["trace_id"] for r in records), \
        "access record without a trace id"

    # stitched traces: retained in the store and mirrored to JSONL
    assert traces["retained"] > 0 and traces["traces"], \
        "no stitched traces retained"
    mirrored = read_jsonl(TRACE_LOG)
    assert mirrored and all(t["root"]["name"] == "request"
                            for t in mirrored)

    # latency exemplars link histogram buckets back to trace ids
    assert re.search(
        r'repro_serve_latency_ms_bucket\{[^}]*\} \d+ # \{trace_id="',
        text), "no trace-id exemplar on the latency histogram"

    # SLO report: every response accounted for, schema stable
    assert slo["schema"] == "repro.obs.slo/v1", slo.get("schema")
    assert slo["lifetime"]["requests"] >= len(statuses)
    with open(SLO_REPORT, "w", encoding="utf-8") as handle:
        json.dump(slo, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"serve smoke ok: {len(statuses)} responses "
          f"({statuses.count(200)} ok, {statuses.count(429)} shed, "
          f"{statuses.count(504)} deadline); "
          f"{len(records)} access records, {traces['retained']} traces "
          f"retained, SLO report -> {SLO_REPORT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
