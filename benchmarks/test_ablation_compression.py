"""Ablation A3 (section III-D): column compression effectiveness.

Paper claim: RLE triples collapse low-cardinality columns (upper tree
levels, context-skewed terms) dramatically, and delta blocks keep
high-cardinality columns near the Dewey lists' size -- which is how the
JDewey encoding avoids a size penalty despite its global-per-level
numbers (Table I).  Also covers the section III-E structure choice:
bitmap vs binary-searched interval erasure give identical results with
comparable cost.
"""

import pytest

from repro.algorithms.join_based import JoinBasedSearch
from repro.index.compression import compress_column, uncompressed_size


def scheme_totals(index):
    totals = {"rle": [0, 0], "delta": [0, 0]}
    for term in index.vocabulary:
        postings = index.term_postings(term)
        for level in range(1, postings.max_len + 1):
            column = postings.column(level)
            scheme, blob = compress_column(column.values)
            totals[scheme][0] += uncompressed_size(column.values)
            totals[scheme][1] += len(blob)
    return totals


@pytest.mark.parametrize("corpus", ["dblp", "xmark"])
def test_compression_ratios(benchmark, bench, corpus):
    db = bench.dblp if corpus == "dblp" else bench.xmark
    totals = benchmark.pedantic(
        lambda: scheme_totals(db.columnar_index), rounds=1, iterations=1)
    for scheme, (raw, packed) in totals.items():
        if packed:
            benchmark.extra_info[f"{scheme}_ratio"] = round(raw / packed, 2)
    rle_raw, rle_packed = totals["rle"]
    delta_raw, delta_packed = totals["delta"]
    # RLE columns (few distinct values) must compress far harder than
    # delta columns, and both must beat fixed-width storage.
    assert rle_raw / rle_packed > 4
    assert delta_raw / delta_packed > 1.5
    assert rle_raw / rle_packed > 2 * (delta_raw / delta_packed)


@pytest.mark.parametrize("mode", ["bitmap", "interval"])
def test_erasure_structures(benchmark, bench, mode):
    """Range checking (interval) vs per-row bitmap pruning, timed on the
    erasure-heavy correlated workload."""
    db = bench.dblp
    queries = bench.builder.correlated_queries()
    bench.warm(db, queries)
    engine = JoinBasedSearch(db.columnar_index, eraser_mode=mode)

    def run():
        total = 0
        for spec in queries:
            results, _ = engine.evaluate(list(spec.terms), "elca",
                                         with_scores=False)
            total += len(results)
        return total

    total = benchmark.pedantic(run, rounds=2, iterations=1,
                               warmup_rounds=1)
    benchmark.extra_info.update(mode=mode, results=total)
