"""Ablation A4 (section III-B): lazy per-column I/O.

Paper claim: because inverted lists are stored vertically and the sweep
starts at min(l_m^1, ..., l_m^k), evaluation never reads columns below
the shallowest keyword's deepest level -- "this would save disk I/O when
the XML tree is deep and some keywords only appear at high levels."
The disk-backed lazy index counts exactly what gets decompressed.
"""

import pytest

from repro.algorithms.join_based import JoinBasedSearch
from repro.index import storage
from repro.index.lazydisk import LazyColumnarIndex


@pytest.fixture(scope="module")
def lazy_dblp(request):
    bench = request.getfixturevalue("bench")
    db = bench.dblp
    blob = storage.serialize_columnar_index(
        db.columnar_index, score_mode=storage.SCORES_EXACT)
    return bench, LazyColumnarIndex(blob, db.tree, db.tokenizer,
                                    db.ranking)


def test_lazy_reads_only_touched_columns(benchmark, lazy_dblp):
    bench, lazy = lazy_dblp
    spec = bench.builder.frequency_sweep(2)[0]
    engine = JoinBasedSearch(lazy)

    def run():
        lazy.io.reset()
        engine.evaluate(list(spec.terms), "elca", with_scores=False)
        return lazy.io.columns_read, lazy.io.compressed_bytes_read

    columns, bytes_read = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(columns=columns, bytes=bytes_read)
    eager = bench.dblp.columnar_index
    total_columns = sum(eager.term_postings(t).max_len
                        for t in spec.terms)
    # The first evaluation decompresses at most one column per level per
    # term, and never below the sweep's start level.
    assert columns <= total_columns
    postings = [eager.term_postings(t) for t in spec.terms]
    start = min(p.max_len for p in postings)
    assert columns <= len(postings) * start


def test_lazy_results_match_eager(benchmark, lazy_dblp):
    bench, lazy = lazy_dblp
    spec = bench.builder.correlated_queries()[0]
    eager_engine = JoinBasedSearch(bench.dblp.columnar_index)
    lazy_engine = JoinBasedSearch(lazy)

    def run():
        expected, _ = eager_engine.evaluate(list(spec.terms), "elca")
        got, _ = lazy_engine.evaluate(list(spec.terms), "elca")
        return expected, got

    expected, got = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [(r.node.dewey, round(r.score, 9)) for r in got] == \
        [(r.node.dewey, round(r.score, 9)) for r in expected]


def test_decompression_cost_amortizes(benchmark, lazy_dblp):
    """Second evaluation of the same query touches zero new columns
    (hot cache, like the paper's experimental setup)."""
    bench, lazy = lazy_dblp
    spec = bench.builder.frequency_sweep(3)[1]
    engine = JoinBasedSearch(lazy)
    engine.evaluate(list(spec.terms), "elca", with_scores=False)
    lazy.io.reset()

    def run():
        engine.evaluate(list(spec.terms), "elca", with_scores=False)
        return lazy.io.columns_read

    new_columns = benchmark.pedantic(run, rounds=2, iterations=1)
    assert new_columns == 0
