"""Shared benchmark fixtures.

One `Workbench` (both corpora + planted workloads) per session.  Scale
is controlled by ``REPRO_BENCH_SCALE``: ``full`` (default, the
EXPERIMENTS.md configuration) or ``small`` for quick smoke runs.
"""

import os

import pytest

from repro.bench.harness import BenchConfig, Workbench


def _config() -> BenchConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "full")
    if scale == "small":
        return BenchConfig.small()
    if scale == "full":
        return BenchConfig()
    raise ValueError(f"REPRO_BENCH_SCALE={scale!r}; use 'full' or 'small'")


@pytest.fixture(scope="session")
def bench() -> Workbench:
    workbench = Workbench(_config())
    # Build both corpora and their indexes outside any timed region.
    workbench.dblp.inverted_index
    workbench.dblp.columnar_index
    workbench.xmark.inverted_index
    workbench.xmark.columnar_index
    return workbench
