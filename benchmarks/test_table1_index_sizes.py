"""Table I: index sizes of every algorithm's structures.

Paper claim (Table I): the JDewey columnar lists (join-based IL) are
about the size of the prefix-compressed Dewey lists (stack-based IL);
the (keyword, Dewey) B-tree of the index-based baseline is several times
larger; the score-augmented top-K IL adds modest overhead; RDIL pays for
an extra per-keyword B-tree on top of the plain lists.
"""

import pytest

from repro.index import storage


@pytest.mark.parametrize("corpus", ["dblp", "xmark"])
def test_table1_sizes(benchmark, bench, corpus):
    db = bench.dblp if corpus == "dblp" else bench.xmark

    report = benchmark.pedantic(
        lambda: storage.measure_sizes(db.columnar_index, db.inverted_index),
        rounds=1, iterations=1)

    rows = dict(report.as_rows())
    for name, size in rows.items():
        benchmark.extra_info[name.replace(" ", "_") + "_KiB"] = \
            round(size / 1024, 1)

    # The qualitative Table I shape.
    assert rows["index-based B-tree"] > 2 * rows["stack-based IL"]
    assert rows["join-based IL"] < 2 * rows["stack-based IL"]
    assert rows["join-based IL"] < rows["top-K join IL"] \
        < 2 * rows["join-based IL"]
    assert rows["RDIL IL"] == rows["stack-based IL"]
    assert rows["RDIL B-tree"] > 0.5 * rows["RDIL IL"]
    # Sparse indices are small relative to the lists (always cached in
    # memory, as the paper notes).
    assert rows["join-based sparse"] < 0.5 * rows["join-based IL"]
