"""Figure 10: top-10 query performance.

Panel (a), random (low-correlation) queries: the join-based top-K
algorithm is *worse* than the general join-based algorithm (few results,
the rank join degenerates into a slow full scan) and its time falls as
the low frequency -- and with it the result count -- rises; RDIL
terminates when the short list drains, so it grows with the low
frequency.

Panels (b)-(c), correlated queries: the top-K algorithm touches only a
fraction of the lists before the K-th result unblocks, while RDIL's
verification-heavy scan blows up with the keyword count.  The
`work-units` benchmarks record the paper's own currency (data items
read) in `extra_info`, since wall-clock between a numpy-vectorized
complete join and a pointer-chasing Python rank join carries a language
constant the paper's all-Java setup did not have.
"""

import pytest

from repro.bench.harness import fig9_cells, run_topk

ALGORITHMS = ("topk-join", "join", "rdil")


class TestFig10aRandom:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("low_index", [0, 1, 2, 3])
    def test_cell(self, benchmark, bench, low_index, algorithm):
        lows = bench.config.low_freqs
        if low_index >= len(lows):
            pytest.skip("scale has fewer frequency steps")
        low = lows[low_index]
        queries = [q for cell_low, cell in fig9_cells(bench, 2)
                   for q in cell if cell_low == low]
        db = bench.dblp
        bench.warm(db, queries)
        benchmark.extra_info.update(panel="fig10-a", low_freq=low,
                                    algorithm=algorithm,
                                    k=bench.config.topk)
        benchmark.pedantic(
            lambda: run_topk(db, queries, algorithm, bench.config.topk),
            rounds=2, iterations=1, warmup_rounds=1)


class TestFig10bcCorrelated:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("query_index", [0, 1, 2, 3, 4, 5])
    def test_query(self, benchmark, bench, query_index, algorithm):
        spec = bench.builder.correlated_queries()[query_index]
        db = bench.dblp
        bench.warm(db, [spec])
        benchmark.extra_info.update(panel="fig10-bc", query=spec.label,
                                    n_keywords=spec.n_keywords,
                                    algorithm=algorithm)
        benchmark.pedantic(
            lambda: run_topk(db, [spec], algorithm, bench.config.topk),
            rounds=2, iterations=1, warmup_rounds=1)


class TestFig10WorkUnits:
    """Data items touched before the top-10 is final (shape check)."""

    def test_topk_reads_fraction_on_correlated(self, benchmark, bench):
        from repro.bench.harness import fig10_work_rows

        rows = benchmark.pedantic(lambda: fig10_work_rows(bench),
                                  rounds=1, iterations=1)
        by_query = {}
        for label, algorithm, items in rows:
            by_query.setdefault(label, {})[algorithm] = items
            benchmark.extra_info[f"{label}/{algorithm}"] = items
        # Paper claim: on correlated queries the top-K join touches less
        # data than the complete evaluation for (at minimum) most
        # queries, and never an order of magnitude more.
        wins = sum(1 for d in by_query.values()
                   if d["topk-join"] < d["join"])
        assert wins >= len(by_query) - 1
        assert all(d["topk-join"] < 3 * d["join"]
                   for d in by_query.values())

    def test_rdil_work_grows_with_keywords(self, benchmark, bench):
        from repro.bench.harness import fig10_work_rows

        rows = benchmark.pedantic(lambda: fig10_work_rows(bench),
                                  rounds=1, iterations=1)
        rdil = {label: items for label, algorithm, items in rows
                if algorithm == "rdil"}
        # corr-0/1 have 2 keywords, corr-4 has 4, corr-5 has 5: RDIL's
        # lookup volume must grow superlinearly along that axis.
        assert rdil["corr-5"] > 2 * rdil["corr-0"]
