"""CI smoke for the self-healing serve path (the `chaos` workflow job).

Builds a sharded index via the CLI, starts the real daemon process
with ``--workers 1`` and a seeded ``--chaos`` schedule (worker kills,
shard latency, injected errors, byte faults), hammers it with
concurrent clients, then asserts the self-healing invariants on the
live process:

* the schedule actually fired (``repro_chaos_injected_total`` > 0) and
  every worker kill was answered with a pool rebuild
  (``repro_pool_rebuilds_total`` >= 1 when kills were injected),
* the daemon healed: ``/healthz`` returns to ``ok`` (all pools ready,
  all breakers closed) after the storm,
* every response is typed (200/429/503/504 only) and every degraded
  200 is marked ``degraded`` with a conservative ``bound``,
* no accepted request outlives its deadline budget,
* SIGTERM drains gracefully: the process exits 0,
* the availability SLO holds over the access log, enforced by
  ``repro slo --fail-on-alert`` (429 sheds excluded by design).

The access log (``chaos-access-ci.jsonl``) and trace log
(``chaos-trace-ci.jsonl``) are written to the working directory so the
CI job can upload them as artifacts.  Exits non-zero on any
violation::

    PYTHONPATH=src python benchmarks/chaos_ci_smoke.py
"""

import http.client
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

HOST = "127.0.0.1"
PORT = int(os.environ.get("REPRO_CHAOS_SMOKE_PORT", "18474"))
CHAOS_SPEC = ("kill=0.04,error=0.04,latency=0.12,latency-ms=30,"
              "byte=0.02,seed=5")
QUERIES = ["w00000 w00001", "author00000", "w00002 w00000",
           "w00001 author00001", "w00003"]
REQUESTS = 300
CLIENTS = 4
TIMEOUT_MS = 2000.0
AVAILABILITY_TARGET = 0.99
ACCESS_LOG = "chaos-access-ci.jsonl"
TRACE_LOG = "chaos-trace-ci.jsonl"


def fetch_json(path: str, timeout: float = 5.0) -> tuple:
    conn = http.client.HTTPConnection(HOST, PORT, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def wait_status(want: str, timeout_s: float = 30.0,
                probe: bool = False) -> dict:
    """Poll /healthz until its status is `want`; with ``probe`` also
    trickle real queries so half-open breakers see the successes they
    need to close."""
    deadline = time.time() + timeout_s
    last = None
    while time.time() < deadline:
        try:
            _status, body = fetch_json("/healthz")
            last = body
            if body.get("status") == want:
                return body
            if probe:
                q = QUERIES[0].replace(" ", "+")
                fetch_json(f"/topk?q={q}&k=5")
        except (OSError, ValueError):
            pass
        time.sleep(0.2)
    raise SystemExit(f"daemon never reached status={want!r}: {last}")


def fire_workload() -> list:
    outcomes = []
    lock = threading.Lock()

    def client(worker: int) -> None:
        conn = http.client.HTTPConnection(HOST, PORT, timeout=30)
        local = []
        try:
            for idx in range(worker, REQUESTS, CLIENTS):
                q = QUERIES[idx % len(QUERIES)].replace(" ", "+")
                start = time.perf_counter()
                try:
                    conn.request("GET", f"/topk?q={q}&k=5")
                    resp = conn.getresponse()
                    body = json.loads(resp.read())
                    status = resp.status
                except (OSError, ValueError):
                    conn.close()
                    conn = http.client.HTTPConnection(HOST, PORT,
                                                      timeout=30)
                    status, body = 599, None
                local.append((status,
                              (time.perf_counter() - start) * 1000.0,
                              body))
        finally:
            conn.close()
        with lock:
            outcomes.extend(local)

    threads = [threading.Thread(target=client, args=(w,))
               for w in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(180)
    return outcomes


def scrape_metrics() -> str:
    with urllib.request.urlopen(
            f"http://{HOST}:{PORT}/metrics", timeout=5) as resp:
        return resp.read().decode("utf-8")


def metric_sum(text: str, name: str) -> float:
    total = 0.0
    seen = False
    for match in re.finditer(
            rf"^{name}(?:\{{[^}}]*\}})? ([0-9.eE+-]+)$", text, re.M):
        total += float(match.group(1))
        seen = True
    assert seen, f"{name} missing from /metrics"
    return total


def main() -> int:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    for stale in (ACCESS_LOG, TRACE_LOG):
        if os.path.exists(stale):
            os.unlink(stale)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-ci-") as tmp:
        db_dir = os.path.join(tmp, "db")
        subprocess.run(
            [sys.executable, "-m", "repro", "generate", "dblp", db_dir,
             "--papers", "400", "--shards", "2"],
            env=env, check=True, timeout=300)
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", db_dir,
             "--port", str(PORT), "--workers", "1",
             "--max-concurrency", "4", "--queue-limit", "32",
             "--result-cache-size", "0",
             "--timeout-ms", str(TIMEOUT_MS), "--partial",
             "--chaos", CHAOS_SPEC,
             "--access-log", ACCESS_LOG, "--trace-log", TRACE_LOG],
            env=env)
        try:
            wait_status("ok", timeout_s=60)
            outcomes = fire_workload()
            # the daemon must heal: pools respawned, breakers closed
            health = wait_status("ok", timeout_s=30, probe=True)
            text = scrape_metrics()
        finally:
            daemon.terminate()   # SIGTERM: the drain path under test
            daemon.wait(timeout=60)
    assert daemon.returncode == 0, \
        f"SIGTERM drain exited {daemon.returncode}"

    statuses = [s for s, _, _ in outcomes]
    assert len(statuses) == REQUESTS, f"lost requests: {len(statuses)}"
    untyped = [s for s in statuses if s not in (200, 429, 503, 504)]
    assert not untyped, f"untyped statuses under chaos: {untyped}"

    # the schedule fired, and kills were answered with rebuilds
    injected = metric_sum(text, "repro_chaos_injected_total")
    assert injected > 0, "chaos schedule never fired"
    kill_match = re.search(
        r'repro_chaos_injected_total\{kind="worker-kill"\} ([0-9.]+)',
        text)
    kills = float(kill_match.group(1)) if kill_match else 0.0
    rebuilds = metric_sum(text, "repro_pool_rebuilds_total")
    if kills > 0:
        assert rebuilds >= 1, \
            f"{kills:.0f} workers killed but no pool rebuilt"
    for shard in health["shard_health"].values():
        assert shard["state"] == "healthy", health

    # degraded responses carry the contract: marked + bounded partials
    degraded = [b for s, _, b in outcomes
                if s == 200 and b and b.get("degraded")]
    for body in degraded:
        assert body.get("partial") and body.get("bound") is not None, \
            f"degraded response without a conservative bound: {body}"

    # no accepted request outlives its deadline budget
    accepted = [ms for s, ms, _ in outcomes if s == 200]
    budget_ms = 1.5 * TIMEOUT_MS + 500.0  # scheduling + client slack
    worst = max(accepted) if accepted else 0.0
    assert worst <= budget_ms, \
        f"request outlived its deadline: {worst:.0f}ms > {budget_ms:.0f}ms"

    # availability SLO over the access log, via the CLI gate CI uses
    slo = subprocess.run(
        [sys.executable, "-m", "repro", "slo", ACCESS_LOG,
         "--availability-target", str(AVAILABILITY_TARGET),
         "--latency-target-ms", str(budget_ms),
         "--fail-on-alert"],
        env=env, capture_output=True, text=True, timeout=120)
    sys.stdout.write(slo.stdout)
    assert slo.returncode == 0, \
        f"repro slo --fail-on-alert tripped:\n{slo.stdout}\n{slo.stderr}"

    shed = statuses.count(429)
    good = statuses.count(200)
    print(f"chaos smoke ok: {REQUESTS} requests ({good} ok, "
          f"{len(degraded)} degraded+bounded, {shed} shed), "
          f"{injected:.0f} faults injected ({kills:.0f} kills, "
          f"{rebuilds:.0f} rebuilds), healed + drained cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
